"""Data-plane transports.

The paper's custom protocol directly on TCP (framing + connection + rpc)
and the status-quo HTTP baseline (http_rpc).  Proclets talk to each other
through this package; the control plane never touches it (§4.3: "the
runtime implements the control plane but not the data plane").
"""

from repro.transport.client import ConnectionPool
from repro.transport.connection import Connection, client_handshake, server_handshake
from repro.transport.framing import MAX_FRAME, read_frame, write_frame
from repro.transport.http_rpc import HttpRpcClient, HttpRpcServer
from repro.transport.rpc import Dispatcher, RemoteInvoker, ReplicaResolver
from repro.transport.server import RPCServer, parse_address

__all__ = [
    "ConnectionPool",
    "Connection",
    "client_handshake",
    "server_handshake",
    "MAX_FRAME",
    "read_frame",
    "write_frame",
    "HttpRpcClient",
    "HttpRpcServer",
    "Dispatcher",
    "RemoteInvoker",
    "ReplicaResolver",
    "RPCServer",
    "parse_address",
]
