"""Shared-nothing worker event loops: the multi-core data plane.

A proclet's RPC serving scales across cores by running ``workers``
independent event loops, one per thread, each owning its accepted
connections *end-to-end*: frames are parsed, dispatched, and answered on
the loop that accepted the socket, so the zero-copy memoryviews and
per-connection outboxes of :mod:`repro.transport.connection` never cross
threads.  Nothing is shared between loops but the listening endpoint —
worker selection is connection-affine, so per-connection state (stream
registries, timeout heaps, coalescing mode) needs no locks.

Two accept strategies sit behind one address:

- **SO_REUSEPORT** (TCP, where the platform supports it): every worker
  binds its own listening socket to the same port and the *kernel*
  spreads incoming connections across them — no user-space handoff, no
  shared accept queue.
- **dup-and-distribute fallback** (unix sockets, or no SO_REUSEPORT): a
  blocking acceptor thread owns the one listening socket and hands each
  accepted connection to the least-loaded worker, which adopts it on its
  own loop before a single byte is read.

Event-loop policy: ``make_loop("auto")`` uses uvloop when importable and
falls back to the stdlib loop silently; ``"on"`` logs a warning when
uvloop is missing (and still falls back — a missing accelerator must not
take the data plane down); ``"off"`` never tries.

On a free-threaded build the loops run truly in parallel; under the GIL
they still isolate syscall latency and socket buffers per core and keep
the architecture ready for it.  Per-worker stats (connections, msgs/s,
handoff queue depth, loop lag) surface imbalance in ``runtime.status``.
"""

from __future__ import annotations

import asyncio
import logging
import socket
import threading
import time
from typing import Callable, Optional

log = logging.getLogger("repro.transport")

#: Seconds between loop-lag probes (sleep-overshoot EWMA).
LAG_PROBE_S = 0.5

#: EWMA smoothing for the lag estimate.
LAG_ALPHA = 0.2


def uvloop_available() -> bool:
    try:
        import uvloop  # noqa: F401
    except ImportError:
        return False
    return True


def make_loop(uvloop_mode: str = "auto") -> asyncio.AbstractEventLoop:
    """Build a fresh event loop under the given uvloop policy.

    ``"auto"``: uvloop if importable, else stdlib (silent).  ``"on"``:
    uvloop expected; warn-and-fall-back when missing.  ``"off"``: stdlib.
    """
    if uvloop_mode not in ("auto", "on", "off"):
        raise ValueError(f"uvloop mode {uvloop_mode!r} (want auto/on/off)")
    if uvloop_mode != "off":
        try:
            import uvloop

            return uvloop.new_event_loop()
        except ImportError:
            if uvloop_mode == "on":
                log.warning(
                    "uvloop requested (uvloop='on') but not installed; "
                    "falling back to the stdlib event loop"
                )
    return asyncio.new_event_loop()


def reuse_port_supported() -> bool:
    return hasattr(socket, "SO_REUSEPORT")


class WorkerLoop(threading.Thread):
    """One worker: a thread running its own event loop, owning its
    connections end-to-end.  Mutable stats fields are written only from
    the worker's loop (or are single-word counters safe to read racily)."""

    def __init__(self, index: int, uvloop_mode: str = "auto") -> None:
        super().__init__(name=f"rpc-worker-{index}", daemon=True)
        self.index = index
        self.loop = make_loop(uvloop_mode)
        self._ready = threading.Event()
        #: Live connections adopted by this worker (mutated on its loop).
        self.conns: set = set()
        #: Cumulative requests served by this worker's connections.
        self.requests = 0
        #: Connections ever accepted/adopted.
        self.accepted = 0
        #: Handoffs submitted but not yet adopted (fallback mode only).
        self.pending_adopts = 0
        #: Sleep-overshoot EWMA, milliseconds: how late the loop runs its
        #: callbacks — the per-worker saturation signal.
        self.loop_lag_ms = 0.0
        self._lag_task: Optional[asyncio.Task] = None
        # msgs/s derived between snapshot() calls.
        self._last_requests = 0
        self._last_snap = time.monotonic()
        self.msgs_per_s = 0.0

    # -- thread body ---------------------------------------------------------

    def run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self._lag_task = self.loop.create_task(self._lag_probe())
        self._ready.set()
        try:
            self.loop.run_forever()
        finally:
            try:
                pending = asyncio.all_tasks(self.loop)
                for task in pending:
                    task.cancel()
                if pending:
                    self.loop.run_until_complete(
                        asyncio.gather(*pending, return_exceptions=True)
                    )
            finally:
                self.loop.close()

    async def _lag_probe(self) -> None:
        while True:
            t0 = self.loop.time()
            await asyncio.sleep(LAG_PROBE_S)
            lag_ms = max(0.0, (self.loop.time() - t0 - LAG_PROBE_S) * 1000.0)
            self.loop_lag_ms += LAG_ALPHA * (lag_ms - self.loop_lag_ms)

    # -- host-side API -------------------------------------------------------

    def start_and_wait(self, timeout: float = 5.0) -> None:
        self.start()
        if not self._ready.wait(timeout):
            raise RuntimeError(f"worker {self.index} failed to start")

    def submit(self, coro):
        """Run ``coro`` on this worker's loop; returns a concurrent Future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)

    def stop(self, timeout: float = 5.0) -> None:
        if self.loop.is_closed():
            return
        try:
            self.loop.call_soon_threadsafe(self.loop.stop)
        except RuntimeError:
            return  # already stopping
        self.join(timeout)

    # -- stats ---------------------------------------------------------------

    @property
    def connection_count(self) -> int:
        # Racy read from the host thread is fine: it's a gauge.
        return sum(1 for c in list(self.conns) if not c.closed)

    def snapshot(self) -> dict:
        now = time.monotonic()
        dt = now - self._last_snap
        if dt > 0.05:
            self.msgs_per_s = (self.requests - self._last_requests) / dt
            self._last_requests = self.requests
            self._last_snap = now
        return {
            "worker": self.index,
            "connections": self.connection_count,
            "requests": self.requests,
            "msgs_per_s": round(self.msgs_per_s, 1),
            "queue_depth": self.pending_adopts,
            "loop_lag_ms": round(self.loop_lag_ms, 3),
        }


class WorkerPool:
    """N worker loops plus connection-affine selection for the fallback
    accept path (least-loaded at accept time; the connection then stays
    put for its whole life)."""

    def __init__(self, workers: int, uvloop_mode: str = "auto") -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least 1 worker")
        self.workers = [WorkerLoop(i, uvloop_mode) for i in range(workers)]

    def start(self) -> None:
        for worker in self.workers:
            worker.start_and_wait()

    def least_loaded(self) -> WorkerLoop:
        return min(
            self.workers, key=lambda w: (w.pending_adopts + len(w.conns), w.index)
        )

    def stop(self) -> None:
        for worker in self.workers:
            worker.stop()

    def stats(self) -> list[dict]:
        return [worker.snapshot() for worker in self.workers]

    def __len__(self) -> int:
        return len(self.workers)


class Acceptor(threading.Thread):
    """Blocking accept thread for the dup-and-distribute fallback: owns
    the one listening socket, hands each accepted connection off via
    ``distribute(sock)`` (called on this thread — keep it non-blocking)."""

    def __init__(self, sock: socket.socket, distribute: Callable) -> None:
        super().__init__(name="rpc-acceptor", daemon=True)
        self._sock = sock
        self._distribute = distribute
        self._stopping = threading.Event()
        sock.settimeout(0.2)  # bounded accept wait so stop() is prompt

    def run(self) -> None:
        while not self._stopping.is_set():
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            if self._stopping.is_set():
                conn.close()
                break
            self._distribute(conn)
        try:
            self._sock.close()
        except OSError:
            pass

    def stop(self, timeout: float = 2.0) -> None:
        self._stopping.set()
        self.join(timeout)
