"""``python -m repro`` — the deployment CLI (see :mod:`repro.cli`)."""

from repro.cli import main

raise SystemExit(main())
