"""Envelopes: the per-proclet side of the deployer (§4.3, Figure 3).

    "An envelope runs as the parent process to a proclet and relays API
    calls to the manager."

An envelope owns exactly one proclet and is the only thing that talks to it
on the control plane.  Everything the proclet asks (RegisterReplica,
ComponentsToHost, StartComponent, routing, heartbeats, telemetry) is
relayed to the :class:`~repro.runtime.manager.Manager`; everything the
manager decides about this proclet (new hosted set, shutdown) is pushed
down through the envelope.

Two implementations:

* :class:`InProcessEnvelope` — the proclet runs in the same OS process and
  event loop.  The process boundary collapses but every other mechanism
  (registration, routing, RPC between proclets over real sockets) is
  identical.  Used by fast tests and the in-process multiprocess deployer.
* :class:`SubprocessEnvelope` — the real thing: forks
  ``python -m repro.runtime.procmain``, talks JSON-lines over a UNIX-domain
  socket (standing in for the paper's UNIX pipe: a socketpair *is* a
  bidirectional pipe), watches the child, and reports its death.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import sys
import tempfile
from typing import Any, Optional

from repro.core.config import AppConfig
from repro.core.errors import RuntimeControlError
from repro.core.registry import FrozenRegistry
from repro.runtime import pipes
from repro.runtime.manager import Manager
from repro.runtime.pipes import ControlEndpoint, StreamPipe, memory_pipe_pair
from repro.runtime.proclet import PipeRuntimeAPI, Proclet

log = logging.getLogger("repro.runtime.envelope")


class RelayAPI:
    """The envelope's RuntimeAPI: relays a proclet's calls to the manager."""

    def __init__(self, manager: Manager, envelope: "BaseEnvelope") -> None:
        self._manager = manager
        self._envelope = envelope

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None:
        self._envelope.address = address
        await self._manager.register_replica(proclet_id, address, group_id)

    async def components_to_host(self, proclet_id: str) -> list[str]:
        return await self._manager.components_to_host(proclet_id)

    async def start_component(self, component: str) -> None:
        await self._manager.start_component(component)

    async def routing_info(self, component: str) -> dict[str, Any]:
        return await self._manager.routing_info(component)

    async def heartbeat(self, proclet_id: str, load: float) -> None:
        self._envelope.last_load = load
        await self._manager.heartbeat(proclet_id, load)

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None:
        await self._manager.export_metrics(proclet_id, snapshot)

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None:
        await self._manager.export_logs(proclet_id, records)

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None:
        await self._manager.export_call_graph(proclet_id, edges)

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None:
        await self._manager.export_traces(proclet_id, spans)

    async def export_spans(self, proclet_id: str, spans: list[Any]) -> None:
        # In-process proclets hand over Span objects directly — no wire
        # encode/decode round trip for telemetry that never leaves the
        # process.
        self._manager.ingest_spans(spans)

    async def handle(self, type_: str, body: dict[str, Any]) -> dict[str, Any]:
        """Pipe-handler form of the relay, for subprocess proclets."""
        if type_ == pipes.REGISTER_REPLICA:
            await self.register_replica(body["proclet_id"], body["address"], body["group_id"])
            return {}
        if type_ == pipes.COMPONENTS_TO_HOST:
            return {"components": await self.components_to_host(body["proclet_id"])}
        if type_ == pipes.START_COMPONENT:
            await self.start_component(body["component"])
            return {}
        if type_ == pipes.ROUTING_INFO:
            return await self.routing_info(body["component"])
        if type_ == pipes.HEARTBEAT:
            await self.heartbeat(body["proclet_id"], body.get("load", 0.0))
            return {}
        if type_ == pipes.METRICS:
            await self.export_metrics(body["proclet_id"], body.get("snapshot", {}))
            return {}
        if type_ == pipes.LOGS:
            await self.export_logs(body["proclet_id"], body.get("records", []))
            return {}
        if type_ == pipes.CALL_GRAPH:
            await self.export_call_graph(body["proclet_id"], body.get("edges", []))
            return {}
        if type_ == pipes.TRACES:
            await self.export_traces(body["proclet_id"], body.get("spans", []))
            return {}
        raise RuntimeControlError(f"unknown control request {type_!r}")


class BaseEnvelope:
    """Common envelope state."""

    def __init__(self, proclet_id: str, group_id: int, manager: Manager) -> None:
        self.proclet_id = proclet_id
        self.group_id = group_id
        self.manager = manager
        self.relay = RelayAPI(manager, self)
        self.address: Optional[str] = None
        self.last_load: float = 0.0
        self.stopped = False

    async def start(self) -> None:
        raise NotImplementedError

    async def stop(self) -> None:
        raise NotImplementedError

    async def drain(self, deadline_s: float) -> Optional[dict[str, Any]]:
        """Ask the proclet to finish in-flight RPCs before stop().

        Returns the proclet's drain response — ``{"drained_s": ...,
        "handover": [shard manifests]}`` — so the manager can re-home the
        retiring replica's flushed state shards.  Best-effort: envelopes
        that cannot reach their proclet (already dead, pipe gone) return
        None — the subsequent hard stop is the fallback either way, and
        recovery then happens lazily from the shared WAL directory.
        """
        return None

    async def push_hosted(self, components: list[str]) -> None:
        """Manager decided this proclet should host a different set."""
        raise NotImplementedError

    async def push_routing(self, component: str, info: dict[str, Any]) -> None:
        """Manager proactively pushes a fresh assignment (ring changed).

        Best-effort by default; envelopes that can reach their proclet
        forward it so ownership checks and caller caches update without
        waiting for a miss.
        """

    async def push_state(self, shards: list[dict[str, Any]]) -> int:
        """Hand flushed shard manifests to this proclet for eager replay.

        Returns the number of WAL records the proclet replayed (0 when
        unreachable); the manager uses the count for handover metrics.
        """
        return 0


class InProcessEnvelope(BaseEnvelope):
    """Envelope whose proclet shares our event loop (no fork)."""

    def __init__(
        self,
        proclet_id: str,
        group_id: int,
        manager: Manager,
        build: FrozenRegistry,
        config: AppConfig,
        *,
        replica_index: int = 0,
        heartbeat_interval_s: float = 0.2,
    ) -> None:
        super().__init__(proclet_id, group_id, manager)
        self.proclet = Proclet(
            proclet_id,
            build,
            config,
            self.relay,
            group_id=group_id,
            replica_index=replica_index,
            heartbeat_interval_s=heartbeat_interval_s,
        )

    async def start(self) -> None:
        await self.proclet.start()

    async def stop(self) -> None:
        if not self.stopped:
            self.stopped = True
            await self.proclet.stop()

    async def drain(self, deadline_s: float) -> Optional[dict[str, Any]]:
        if self.stopped:
            return None
        # Route through handle_control so in-process drains produce the
        # same {"drained_s", "handover"} shape subprocess drains do.
        return await self.proclet.handle_control(
            pipes.DRAIN, {"deadline_s": deadline_s}
        )

    async def push_hosted(self, components: list[str]) -> None:
        await self.proclet.host_components(components)

    async def push_routing(self, component: str, info: dict[str, Any]) -> None:
        if not self.stopped:
            await self.proclet.handle_control(pipes.ROUTING_INFO, info)

    async def push_state(self, shards: list[dict[str, Any]]) -> int:
        if self.stopped:
            return 0
        resp = await self.proclet.handle_control(
            pipes.STATE_HANDOVER, {"shards": shards}
        )
        return int(resp.get("replayed", 0))

    def kill(self) -> None:
        """Abrupt, unclean stop — the chaos-testing hook."""
        self.stopped = True
        asyncio.ensure_future(self.proclet.stop())


class SubprocessEnvelope(BaseEnvelope):
    """Envelope that runs its proclet as a real child OS process."""

    def __init__(
        self,
        proclet_id: str,
        group_id: int,
        manager: Manager,
        *,
        spec: dict[str, Any],
        control_dir: str,
    ) -> None:
        super().__init__(proclet_id, group_id, manager)
        self._spec = spec
        self._control_dir = control_dir
        self._process: Optional[asyncio.subprocess.Process] = None
        self._endpoint: Optional[ControlEndpoint] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._connected = asyncio.Event()
        self._stderr_task: Optional[asyncio.Task] = None

    async def start(self) -> None:
        socket_path = os.path.join(self._control_dir, f"{self.proclet_id}.sock")
        if os.path.exists(socket_path):
            os.unlink(socket_path)
        self._server = await asyncio.start_unix_server(self._accept, socket_path)

        spec_path = os.path.join(self._control_dir, f"{self.proclet_id}.spec.json")
        with open(spec_path, "w") as f:
            json.dump(self._spec, f)

        self._process = await asyncio.create_subprocess_exec(
            sys.executable,
            "-m",
            "repro.runtime.procmain",
            socket_path,
            spec_path,
            stdout=asyncio.subprocess.DEVNULL,
            stderr=asyncio.subprocess.PIPE,
        )
        self._stderr_task = asyncio.ensure_future(self._pump_stderr())
        try:
            await asyncio.wait_for(self._connected.wait(), timeout=30.0)
        except asyncio.TimeoutError:
            raise RuntimeControlError(
                f"proclet {self.proclet_id} did not connect its control socket"
            ) from None

    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        pipe = StreamPipe(reader, writer)
        self._endpoint = ControlEndpoint(pipe, self.relay.handle, name=f"env-{self.proclet_id}")
        self._endpoint.start()
        self._connected.set()

    async def _pump_stderr(self) -> None:
        """Forward the child's stderr into our log (debuggability)."""
        assert self._process is not None and self._process.stderr is not None
        try:
            async for line in self._process.stderr:
                log.info("[%s] %s", self.proclet_id, line.decode(errors="replace").rstrip())
        except (asyncio.CancelledError, ValueError):
            pass

    async def push_hosted(self, components: list[str]) -> None:
        if self._endpoint is not None:
            await self._endpoint.request("host_components", {"components": components})

    async def drain(self, deadline_s: float) -> Optional[dict[str, Any]]:
        if self.stopped or self._endpoint is None or self._endpoint.closed:
            return None
        try:
            return await self._endpoint.request(
                pipes.DRAIN,
                {"deadline_s": deadline_s},
                timeout=deadline_s + 5.0,
            )
        except (RuntimeControlError, asyncio.TimeoutError):
            return None  # child died or wedged mid-drain; stop() will clean up

    async def push_routing(self, component: str, info: dict[str, Any]) -> None:
        if self.stopped or self._endpoint is None or self._endpoint.closed:
            return
        try:
            await self._endpoint.request(pipes.ROUTING_INFO, info)
        except (RuntimeControlError, asyncio.TimeoutError):
            pass  # proclet will learn on its next routing miss

    async def push_state(self, shards: list[dict[str, Any]]) -> int:
        if self.stopped or self._endpoint is None or self._endpoint.closed:
            return 0
        try:
            resp = await self._endpoint.request(
                pipes.STATE_HANDOVER, {"shards": shards}, timeout=30.0
            )
            return int(resp.get("replayed", 0))
        except (RuntimeControlError, asyncio.TimeoutError):
            return 0  # survivor will replay lazily from the shared WAL dir

    async def stop(self) -> None:
        if self.stopped:
            return
        self.stopped = True
        if self._endpoint is not None and not self._endpoint.closed:
            try:
                await self._endpoint.request(pipes.SHUTDOWN, timeout=5.0)
            except RuntimeControlError:
                pass
            await self._endpoint.close()
        if self._process is not None:
            try:
                await asyncio.wait_for(self._process.wait(), timeout=5.0)
            except asyncio.TimeoutError:
                self._process.kill()
                await self._process.wait()
        if self._stderr_task is not None:
            self._stderr_task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    def kill(self) -> None:
        """SIGKILL the child without ceremony (chaos-testing hook)."""
        self.stopped = True
        if self._process is not None and self._process.returncode is None:
            self._process.kill()

    @property
    def pid(self) -> Optional[int]:
        return self._process.pid if self._process else None

    @property
    def returncode(self) -> Optional[int]:
        return self._process.returncode if self._process else None
