"""Atomic rollouts (§4.4) and the rolling-update baseline they replace.

    "The runtime ensures that application versions are rolled out
    atomically ... The runtime gradually shifts traffic from the old
    version to the new version, but once a user request is forwarded to a
    specific version, it is processed entirely within that version."

Mechanics in this implementation:

* Each application version is a complete deployment with its own manager,
  proclets, and deployment-version digest.  The transport handshake
  (:mod:`repro.transport.connection`) makes cross-version data-plane
  traffic *impossible*, not merely discouraged.
* :class:`BlueGreenRollout` owns two such deployments and a traffic
  weight.  ``pin()`` picks a version for one request — everything that
  request does happens against that version's stubs (the request is
  "pinned").  ``advance()`` moves the weight by one step; ``abort()``
  returns all traffic to blue.

For the evaluation of what rollouts *avoid*, :class:`RollingUpdateModel`
models the status-quo alternative: replicas of each service are upgraded
one at a time, so during the update a request may traverse a mix of old
and new replicas.  [78] (cited by the paper) found two-thirds of
catastrophic failures come from exactly these cross-version interactions;
the model computes how often they occur, and the chaos benchmark (E10)
injects a schema change to turn each crossing into an observable failure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.core.config import RolloutConfig
from repro.core.errors import CrossVersionViolation, RolloutError


@dataclass
class PinnedRequest:
    """A request's version pin: hand it to everything serving the request."""

    version: str
    app: Any  # the Application for that version

    def check(self, version: str) -> None:
        """Assert that code at ``version`` is serving this request."""
        if version != self.version:
            raise CrossVersionViolation(
                f"request pinned to version {self.version} reached code at "
                f"version {version}"
            )


class BlueGreenRollout:
    """Gradual, atomic traffic shift between two complete deployments."""

    def __init__(
        self,
        blue: Any,
        green: Any,
        *,
        config: Optional[RolloutConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        if blue.version == green.version:
            raise RolloutError(
                "blue and green must be different deployment versions "
                f"(both are {blue.version}); a rollout of the same build is a no-op"
            )
        self.blue = blue
        self.green = green
        self.config = config or RolloutConfig()
        self._green_weight = 0.0
        self._step = 0
        self._rng = random.Random(seed)
        self._finalized = False

    @property
    def green_weight(self) -> float:
        return self._green_weight

    @property
    def done(self) -> bool:
        return self._green_weight >= 1.0

    def pin(self) -> PinnedRequest:
        """Choose the version for one incoming request (then stay there)."""
        if self._rng.random() < self._green_weight:
            return PinnedRequest(self.green.version, self.green)
        return PinnedRequest(self.blue.version, self.blue)

    def advance(self) -> float:
        """Shift one more step of traffic to green; returns the new weight."""
        if self._finalized:
            raise RolloutError("rollout already finalized")
        self._step += 1
        self._green_weight = min(1.0, self._step / self.config.steps)
        return self._green_weight

    def abort(self) -> None:
        """Return all traffic to blue (the rollback path)."""
        if self._finalized:
            raise RolloutError("rollout already finalized")
        self._green_weight = 0.0
        self._step = 0

    async def finalize(self) -> None:
        """Complete the rollout: all traffic green, blue shut down."""
        if not self.done:
            raise RolloutError(
                f"cannot finalize at green weight {self._green_weight:.2f}; "
                "advance to 1.0 first"
            )
        self._finalized = True
        await self.blue.shutdown()


async def run_rollout(
    blue: Any,
    green: Any,
    *,
    config: Optional[RolloutConfig] = None,
    probe: Optional[Callable[[PinnedRequest], Any]] = None,
    requests_per_step: int = 10,
    seed: Optional[int] = None,
) -> "RolloutReport":
    """Drive a complete blue/green rollout, probing each step.

    ``probe`` is an async callable receiving a :class:`PinnedRequest`; it
    should exercise the app and raise on failure.  Any probe failure aborts
    the rollout (traffic snaps back to blue) — the automated safety the
    paper's deployer architecture enables.
    """
    rollout = BlueGreenRollout(blue, green, config=config, seed=seed)
    report = RolloutReport()
    while not rollout.done:
        rollout.advance()
        for _ in range(requests_per_step):
            pinned = rollout.pin()
            report.observe(pinned.version)
            if probe is not None:
                try:
                    await probe(pinned)
                except Exception as exc:
                    rollout.abort()
                    report.aborted = True
                    report.abort_reason = f"{type(exc).__name__}: {exc}"
                    return report
    await rollout.finalize()
    report.completed = True
    return report


@dataclass
class RolloutReport:
    """What happened during a rollout."""

    requests_by_version: dict[str, int] = field(default_factory=dict)
    completed: bool = False
    aborted: bool = False
    abort_reason: str = ""

    def observe(self, version: str) -> None:
        self.requests_by_version[version] = self.requests_by_version.get(version, 0) + 1

    @property
    def total_requests(self) -> int:
        return sum(self.requests_by_version.values())


# ---------------------------------------------------------------------------
# The status-quo baseline: rolling updates with cross-version interactions
# ---------------------------------------------------------------------------


@dataclass
class RollingUpdateModel:
    """Monte-Carlo model of a rolling update across a service chain.

    ``replicas_per_service`` replicas of each of ``num_services`` services
    are upgraded one by one (round-robin across services, as Kubernetes
    rolling updates effectively do).  A request traverses one replica of
    each service; it *crosses versions* if it touches both old and new
    code.  ``cross_version_fraction(upgraded)`` is the probability of a
    crossing when a fraction ``upgraded`` of all replicas runs the new
    version.

    Closed form for uniform replica choice: a request sees all-old with
    probability (1-p)^k and all-new with p^k, so crossings happen with
    probability 1 - p^k - (1-p)^k, maximized at p=0.5.  The Monte-Carlo
    method exists to support non-uniform upgrade orders and to feed the
    chaos harness with concrete old/new paths.
    """

    num_services: int
    replicas_per_service: int
    seed: int = 0

    def cross_version_fraction(self, upgraded: float) -> float:
        p = min(1.0, max(0.0, upgraded))
        k = self.num_services
        return 1.0 - p**k - (1.0 - p) ** k

    def sample_paths(self, upgraded: float, requests: int) -> list[list[bool]]:
        """Sample request paths; each entry is per-service is-new flags."""
        rng = random.Random(self.seed)
        new_per_service = round(self.replicas_per_service * upgraded)
        paths = []
        for _ in range(requests):
            path = []
            for _ in range(self.num_services):
                replica = rng.randrange(self.replicas_per_service)
                path.append(replica < new_per_service)
            paths.append(path)
        return paths

    def simulate(self, upgraded: float, requests: int = 1000) -> float:
        """Measured crossing fraction over sampled paths."""
        crossings = 0
        for path in self.sample_paths(upgraded, requests):
            if any(path) and not all(path):
                crossings += 1
        return crossings / requests

    def total_exposure(self, steps: int = 20, requests_per_step: int = 1000) -> float:
        """Mean crossing probability integrated over a whole rolling update."""
        total = 0.0
        for i in range(1, steps + 1):
            total += self.simulate(i / steps, requests_per_step)
        return total / steps
