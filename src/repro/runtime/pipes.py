"""The proclet <-> runtime control protocol over a pipe (§4.3, Table 1).

    "Concretely, proclets interact with the runtime over a Unix pipe."

Messages are JSON lines — the control plane is low-rate, so a debuggable
text protocol beats squeezing bytes (the *data* plane is where the custom
binary format matters).  Each message is an envelope::

    {"id": 7, "kind": "req",  "type": "register_replica", "body": {...}}
    {"id": 7, "kind": "resp", "body": {...}}
    {"id": 7, "kind": "err",  "error": "..."}

Request types (the API of Table 1, plus the telemetry the figure-3
architecture needs):

=====================  ======================================================
``register_replica``   proclet -> runtime: alive and serving at an address
``components_to_host`` proclet -> runtime: which components should I run?
``start_component``    proclet -> runtime: ensure a component is started
``routing_info``       proclet -> runtime: replica set / assignment for a
                       component
``heartbeat``          proclet -> runtime: liveness + load report
``metrics``            proclet -> runtime: metrics snapshot
``logs``               proclet -> runtime: buffered structured log records
``drain``              runtime -> proclet: close the door, finish in-flight
                       RPCs, flush + export owned state shards, respond when
                       drained (graceful pre-shutdown)
``state_handover``     runtime -> proclet: adopt flushed state shards a
                       retiring peer exported (replay before serving)
``shutdown``           runtime -> proclet: stop serving and exit
=====================  ======================================================

Transports: :class:`StreamPipe` (real OS pipes / sockets; what subprocess
proclets use) and :class:`MemoryPipe` (paired in-process queues; what tests
and the in-process envelope use).  Both expose ``send``/``recv``/``close``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import logging
from typing import Any, Awaitable, Callable, Optional, Protocol

from repro.core.errors import RuntimeControlError

log = logging.getLogger("repro.runtime.pipes")

# Request type constants (Table 1 names in snake_case).
REGISTER_REPLICA = "register_replica"
COMPONENTS_TO_HOST = "components_to_host"
START_COMPONENT = "start_component"
ROUTING_INFO = "routing_info"
HEARTBEAT = "heartbeat"
METRICS = "metrics"
LOGS = "logs"
CALL_GRAPH = "call_graph"
TRACES = "traces"
DRAIN = "drain"
STATE_HANDOVER = "state_handover"
SHUTDOWN = "shutdown"

MAX_LINE = 32 * 1024 * 1024


class PipeTransport(Protocol):
    async def send(self, message: dict[str, Any]) -> None: ...

    async def recv(self) -> Optional[dict[str, Any]]: ...

    def close(self) -> None: ...


class StreamPipe:
    """JSON-lines over an asyncio stream pair (pipe, socketpair, TCP)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()

    async def send(self, message: dict[str, Any]) -> None:
        data = json.dumps(message, separators=(",", ":")).encode() + b"\n"
        async with self._send_lock:
            self._writer.write(data)
            await self._writer.drain()

    async def recv(self) -> Optional[dict[str, Any]]:
        try:
            line = await self._reader.readline()
        except (ConnectionError, OSError, asyncio.LimitOverrunError, ValueError) as exc:
            raise RuntimeControlError(f"control pipe read failed: {exc}") from exc
        if not line:
            return None
        if len(line) > MAX_LINE:
            raise RuntimeControlError("control message too large")
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise RuntimeControlError(f"malformed control message: {exc}") from exc
        if not isinstance(message, dict):
            raise RuntimeControlError(f"control message must be an object: {message!r}")
        return message

    def close(self) -> None:
        try:
            self._writer.close()
        except (ConnectionError, OSError, RuntimeError):
            pass


class MemoryPipe:
    """One end of an in-process duplex channel."""

    def __init__(self, inbox: asyncio.Queue, outbox: asyncio.Queue) -> None:
        self._inbox = inbox
        self._outbox = outbox
        self._closed = False

    async def send(self, message: dict[str, Any]) -> None:
        if self._closed:
            raise RuntimeControlError("pipe closed")
        await self._outbox.put(message)

    async def recv(self) -> Optional[dict[str, Any]]:
        item = await self._inbox.get()
        return item  # None is the close sentinel

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # Wake the peer's recv with the close sentinel.
            self._outbox.put_nowait(None)


def memory_pipe_pair() -> tuple[MemoryPipe, MemoryPipe]:
    """Two connected in-process pipe ends."""
    a_to_b: asyncio.Queue = asyncio.Queue()
    b_to_a: asyncio.Queue = asyncio.Queue()
    return MemoryPipe(b_to_a, a_to_b), MemoryPipe(a_to_b, b_to_a)


Handler = Callable[[str, dict[str, Any]], Awaitable[dict[str, Any]]]


class ControlEndpoint:
    """Request/response + notifications over a :class:`PipeTransport`.

    Symmetric: both the proclet side and the envelope side are endpoints,
    each with a handler for requests initiated by the peer.
    """

    def __init__(
        self,
        pipe: PipeTransport,
        handler: Optional[Handler] = None,
        *,
        name: str = "endpoint",
    ) -> None:
        self._pipe = pipe
        self._handler = handler
        self._name = name
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._task: Optional[asyncio.Task] = None
        self._closed = False
        self._handler_tasks: set[asyncio.Task] = set()

    def start(self) -> None:
        self._task = asyncio.ensure_future(self._loop())

    @property
    def closed(self) -> bool:
        return self._closed

    async def request(
        self, type_: str, body: Optional[dict[str, Any]] = None, *, timeout: float = 30.0
    ) -> dict[str, Any]:
        if self._closed:
            raise RuntimeControlError(f"{self._name}: control endpoint closed")
        msg_id = next(self._ids)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[msg_id] = future
        await self._pipe.send(
            {"id": msg_id, "kind": "req", "type": type_, "body": body or {}}
        )
        try:
            return await asyncio.wait_for(future, timeout)
        except asyncio.TimeoutError:
            self._pending.pop(msg_id, None)
            raise RuntimeControlError(
                f"{self._name}: {type_} request timed out after {timeout}s"
            ) from None

    async def notify(self, type_: str, body: Optional[dict[str, Any]] = None) -> None:
        """Fire-and-forget message (no response expected)."""
        if self._closed:
            return
        await self._pipe.send({"kind": "note", "type": type_, "body": body or {}})

    async def _loop(self) -> None:
        try:
            while True:
                message = await self._pipe.recv()
                if message is None:
                    break
                kind = message.get("kind")
                if kind == "resp":
                    self._resolve(message.get("id"), message.get("body", {}), None)
                elif kind == "err":
                    self._resolve(
                        message.get("id"),
                        None,
                        RuntimeControlError(message.get("error", "unknown error")),
                    )
                elif kind in ("req", "note"):
                    task = asyncio.ensure_future(self._dispatch(message))
                    self._handler_tasks.add(task)
                    task.add_done_callback(self._handler_tasks.discard)
                else:
                    log.warning("%s: unknown message kind %r", self._name, kind)
        except RuntimeControlError as exc:
            log.debug("%s: control loop ended: %s", self._name, exc)
        except asyncio.CancelledError:
            pass
        finally:
            self._shutdown_pending()

    def _shutdown_pending(self) -> None:
        self._closed = True
        for future in self._pending.values():
            if not future.done():
                future.set_exception(RuntimeControlError("control pipe closed"))
        self._pending.clear()

    def _resolve(self, msg_id: Any, body: Optional[dict], exc: Optional[Exception]) -> None:
        future = self._pending.pop(msg_id, None)
        if future is None or future.done():
            return
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(body)

    async def _dispatch(self, message: dict[str, Any]) -> None:
        type_ = message.get("type", "")
        body = message.get("body", {})
        is_request = message.get("kind") == "req"
        if self._handler is None:
            if is_request:
                await self._safe_send(
                    {"id": message.get("id"), "kind": "err", "error": "no handler"}
                )
            return
        try:
            result = await self._handler(type_, body)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            log.exception("%s: handler for %s failed", self._name, type_)
            if is_request:
                await self._safe_send(
                    {"id": message.get("id"), "kind": "err", "error": f"{type(exc).__name__}: {exc}"}
                )
            return
        if is_request:
            await self._safe_send(
                {"id": message.get("id"), "kind": "resp", "body": result or {}}
            )

    async def _safe_send(self, message: dict[str, Any]) -> None:
        try:
            await self._pipe.send(message)
        except (RuntimeControlError, ConnectionError, OSError):
            pass

    async def close(self) -> None:
        self._closed = True
        if self._task is not None:
            self._task.cancel()
        for task in list(self._handler_tasks):
            task.cancel()
        self._pipe.close()
        self._shutdown_pending()
