"""Stateful rollouts: testing cross-version interactions through state (§5.4).

    "if an application updates state in a persistent storage system ...
    different versions of an application will indirectly influence each
    other via the data they read and write.  These cross-version
    interactions are unavoidable ... an open question remains about how to
    test these interactions and identify bugs early."

This module is our take on that open question: a *state compatibility
checker* run at rollout time, before any traffic shifts.  Given the old
and new versions' schemas for each persisted record type, it verifies —
with the actual wire codec — that:

* **forward**: records written by the old version decode under the new
  schema (the new version can read existing state);
* **backward**: records written by the new version decode under the old
  schema (during the shift, and after a rollback, the old version can
  read state the new version wrote);
* **round-trip fidelity**: values survive old→new→old re-encoding without
  silent mutation (the corruption case of E10: tagged formats "succeed"
  while scrambling fields).

The checker consumes representative sample values (from tests or recorded
production data) and produces a report the rollout driver can gate on —
:func:`gate_rollout` raises before a single request reaches green if state
would be unsafe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.codegen.schema import Schema, schema_of
from repro.core.errors import DecodeError, EncodeError, RolloutError
from repro.serde import codec_by_name


@dataclass(frozen=True)
class StateType:
    """One persisted record type in one application version."""

    name: str  # logical store name, e.g. "orders"
    cls: type  # the dataclass the version reads/writes

    @property
    def schema(self) -> Schema:
        return schema_of(self.cls)


@dataclass
class Incompatibility:
    store: str
    direction: str  # "forward" | "backward" | "roundtrip"
    detail: str
    sample: Any = None

    def __str__(self) -> str:
        return f"[{self.store}] {self.direction}: {self.detail}"


@dataclass
class CompatibilityReport:
    checked_stores: list[str] = field(default_factory=list)
    samples_checked: int = 0
    incompatibilities: list[Incompatibility] = field(default_factory=list)

    @property
    def safe(self) -> bool:
        return not self.incompatibilities

    def summary(self) -> str:
        if self.safe:
            return (
                f"state compatible: {len(self.checked_stores)} store(s), "
                f"{self.samples_checked} sample(s) verified"
            )
        lines = [
            f"state INCOMPATIBLE: {len(self.incompatibilities)} issue(s) "
            f"across {len(self.checked_stores)} store(s):"
        ]
        lines += [f"  - {issue}" for issue in self.incompatibilities]
        return "\n".join(lines)


class StateCompatibilityChecker:
    """Checks every shared store between two application versions."""

    def __init__(self, codec_name: str = "tagged") -> None:
        # State at rest is typically in the *versioned* format (the compact
        # format is only valid within one deployment version — that is the
        # whole point), so tagged is the natural default here.
        self._codec = codec_by_name(codec_name)
        self._codec_name = codec_name

    def check(
        self,
        old: list[StateType],
        new: list[StateType],
        samples: dict[str, list[Any]],
    ) -> CompatibilityReport:
        """Check all stores; ``samples`` maps store name -> old-version values."""
        report = CompatibilityReport()
        new_by_name = {t.name: t for t in new}
        for old_type in old:
            new_type = new_by_name.get(old_type.name)
            if new_type is None:
                # Store dropped in the new version: old data becomes
                # unreachable, which deserves an explicit call-out.
                report.incompatibilities.append(
                    Incompatibility(
                        old_type.name,
                        "forward",
                        "store has no schema in the new version; existing "
                        "records would be orphaned",
                    )
                )
                report.checked_stores.append(old_type.name)
                continue
            report.checked_stores.append(old_type.name)
            for sample in samples.get(old_type.name, []):
                report.samples_checked += 1
                self._check_sample(old_type, new_type, sample, report)
        return report

    def _check_sample(
        self,
        old_type: StateType,
        new_type: StateType,
        sample: Any,
        report: CompatibilityReport,
    ) -> None:
        store = old_type.name
        try:
            stored = self._codec.encode(old_type.schema, sample)
        except EncodeError as exc:
            report.incompatibilities.append(
                Incompatibility(store, "forward", f"sample does not encode: {exc}", sample)
            )
            return
        # Forward: can the new version read old state?
        try:
            as_new = self._codec.decode(new_type.schema, stored)
        except DecodeError as exc:
            report.incompatibilities.append(
                Incompatibility(store, "forward", f"old record unreadable by new schema: {exc}", sample)
            )
            return
        # Forward fidelity: fields that exist under the same *name* in
        # both versions must carry the same value after decoding.  This is
        # what catches the silent swap of two same-typed fields — the wire
        # accepts it, round-trips cancel it, but `user_id` now holds an
        # order id.
        shared = {f.name for f in old_type.schema.fields} & {
            f.name for f in new_type.schema.fields
        }
        for name in sorted(shared):
            if getattr(sample, name) != getattr(as_new, name):
                report.incompatibilities.append(
                    Incompatibility(
                        store,
                        "forward",
                        f"field {name!r} changed meaning: "
                        f"{getattr(sample, name)!r} -> {getattr(as_new, name)!r} "
                        "(same-named fields must keep their values)",
                        sample,
                    )
                )
                return
        # Backward: can the old version read what the new one writes?
        try:
            rewritten = self._codec.encode(new_type.schema, as_new)
            as_old_again = self._codec.decode(old_type.schema, rewritten)
        except (EncodeError, DecodeError) as exc:
            report.incompatibilities.append(
                Incompatibility(store, "backward", f"new record unreadable by old schema: {exc}", sample)
            )
            return
        # Round-trip fidelity: shared fields must survive unchanged.  This
        # is the silent-corruption detector — a reordered or re-numbered
        # field decodes "fine" but lands in the wrong place.
        if not self._fields_match(old_type, sample, as_old_again):
            report.incompatibilities.append(
                Incompatibility(
                    store,
                    "roundtrip",
                    f"value mutated across versions: {sample!r} -> {as_old_again!r}",
                    sample,
                )
            )

    def _fields_match(self, old_type: StateType, before: Any, after: Any) -> bool:
        for f in old_type.schema.fields:
            if getattr(before, f.name) != getattr(after, f.name):
                return False
        return True


async def gate_rollout(
    checker: StateCompatibilityChecker,
    old: list[StateType],
    new: list[StateType],
    samples: dict[str, list[Any]],
) -> CompatibilityReport:
    """The rollout gate: raise :class:`RolloutError` on unsafe state.

    Call before ``run_rollout``; a failed gate means the new build must not
    receive traffic because even atomic rollouts cannot isolate persistent
    state (§5.4).
    """
    report = checker.check(old, new, samples)
    if not report.safe:
        raise RolloutError(report.summary())
    return report
