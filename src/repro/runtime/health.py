"""Replica health tracking.

Envelopes report heartbeats for their proclets; the manager's
:class:`HealthTracker` turns heartbeat recency into a health state and
drives restart decisions ("restarting components when they fail", §4.1)
and routing updates (dead replicas leave the replica set and the routing
assignment).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class HealthState(enum.Enum):
    STARTING = "starting"
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    DEAD = "dead"


@dataclass
class ReplicaHealth:
    replica_id: str
    state: HealthState
    last_heartbeat: float
    consecutive_misses: int = 0
    #: True once a sweep has reported this replica's death to the caller.
    reaped: bool = False


class HealthTracker:
    """Heartbeat bookkeeping for a set of replicas.

    A replica is SUSPECT after ``suspect_after_s`` without a heartbeat and
    DEAD after ``dead_after_s``.  Time is injected so the simulator and the
    real runtime share this logic.
    """

    def __init__(self, *, suspect_after_s: float = 3.0, dead_after_s: float = 10.0) -> None:
        if dead_after_s <= suspect_after_s:
            raise ValueError("dead_after_s must exceed suspect_after_s")
        self._suspect_after_s = suspect_after_s
        self._dead_after_s = dead_after_s
        self._replicas: dict[str, ReplicaHealth] = {}

    def register(self, replica_id: str, now: float) -> None:
        self._replicas[replica_id] = ReplicaHealth(
            replica_id, HealthState.STARTING, last_heartbeat=now
        )

    def heartbeat(self, replica_id: str, now: float) -> None:
        health = self._replicas.get(replica_id)
        if health is None:
            self.register(replica_id, now)
            health = self._replicas[replica_id]
        health.last_heartbeat = now
        health.consecutive_misses = 0
        health.state = HealthState.HEALTHY

    def remove(self, replica_id: str) -> None:
        self._replicas.pop(replica_id, None)

    def mark_dead(self, replica_id: str) -> None:
        health = self._replicas.get(replica_id)
        if health is not None:
            health.state = HealthState.DEAD

    def sweep(self, now: float) -> list[str]:
        """Advance states from heartbeat age; returns unreaped dead replicas.

        Replicas killed explicitly (``mark_dead``) are reported by the next
        sweep exactly once, same as replicas that timed out.
        """
        newly_dead = []
        for health in self._replicas.values():
            if health.state is HealthState.DEAD:
                if not health.reaped:
                    health.reaped = True
                    newly_dead.append(health.replica_id)
                continue
            age = now - health.last_heartbeat
            if age >= self._dead_after_s:
                health.state = HealthState.DEAD
                health.reaped = True
                newly_dead.append(health.replica_id)
            elif age >= self._suspect_after_s and health.state is HealthState.HEALTHY:
                health.state = HealthState.SUSPECT
        return newly_dead

    def state(self, replica_id: str) -> Optional[HealthState]:
        health = self._replicas.get(replica_id)
        return health.state if health else None

    def healthy(self) -> list[str]:
        return [
            r.replica_id
            for r in self._replicas.values()
            if r.state in (HealthState.HEALTHY, HealthState.STARTING)
        ]

    def all(self) -> dict[str, ReplicaHealth]:
        return dict(self._replicas)
