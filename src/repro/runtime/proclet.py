"""The proclet: the environment-agnostic daemon in every app process (§4.3).

    "Every application binary runs a small, environment-agnostic daemon
    called a proclet that is linked into the binary during compilation.
    A proclet manages the components in a running binary."

One :class:`Proclet` instance lives in each OS process of a deployment.
It:

* registers itself with the runtime (``RegisterReplica``),
* learns which components it must host (``ComponentsToHost``),
* instantiates those components and serves them over the data-plane RPC
  server,
* hands out stubs: local stubs for co-hosted components, remote stubs —
  with routing — for everything else, asking the runtime to
  ``StartComponent`` on first use,
* reports heartbeats (with a load estimate), metrics, and logs.

The runtime side of the conversation is abstracted as :class:`RuntimeAPI`,
with two implementations: one over a control pipe (real subprocess
deployments, :class:`PipeRuntimeAPI`) and one calling the manager directly
(in-process deployments and tests, in
:mod:`repro.runtime.deployers.multi`).
"""

from __future__ import annotations

import asyncio
import logging
import time
from typing import Any, Optional, Protocol

from repro.codegen.compiler import MethodSpec
from repro.core.call_graph import CallGraph, ROOT
from repro.core.component import ComponentContext, instantiate, shutdown_instance
from repro.core.config import AppConfig
from repro.core.errors import ComponentNotFound, DeadlineExceeded, Unavailable
from repro.core.registry import FrozenRegistry, Registration
from repro.core.stub import LocalInvoker, make_stub
from repro.observability.logs import LogBuffer
from repro.observability.metrics import MetricsRegistry
from repro.runtime import pipes
from repro.runtime.pipes import ControlEndpoint
from repro.runtime.routing import Assignment, RoutingTable
from repro.serde import codec_by_name
from repro.transport.client import ConnectionPool
from repro.transport.rpc import Dispatcher, RemoteInvoker
from repro.transport.server import AdmissionController, RPCServer

log = logging.getLogger("repro.runtime.proclet")


class RuntimeAPI(Protocol):
    """What a proclet can ask of the runtime (Table 1 + telemetry)."""

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None: ...

    async def components_to_host(self, proclet_id: str) -> list[str]: ...

    async def start_component(self, component: str) -> None: ...

    async def routing_info(self, component: str) -> dict[str, Any]: ...

    async def heartbeat(self, proclet_id: str, load: float) -> None: ...

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None: ...

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None: ...

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None: ...

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None: ...

    async def export_spans(self, proclet_id: str, spans: list[Any]) -> None:
        """Ship finished Span objects; implementations that cross a real
        process boundary wire-encode, in-process relays pass them through."""
        ...


class PipeRuntimeAPI:
    """RuntimeAPI over a control pipe (proclet side of §4.3's Unix pipe)."""

    def __init__(self, endpoint: ControlEndpoint) -> None:
        self._endpoint = endpoint

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None:
        await self._endpoint.request(
            pipes.REGISTER_REPLICA,
            {"proclet_id": proclet_id, "address": address, "group_id": group_id},
        )

    async def components_to_host(self, proclet_id: str) -> list[str]:
        resp = await self._endpoint.request(
            pipes.COMPONENTS_TO_HOST, {"proclet_id": proclet_id}
        )
        return list(resp.get("components", []))

    async def start_component(self, component: str) -> None:
        await self._endpoint.request(pipes.START_COMPONENT, {"component": component})

    async def routing_info(self, component: str) -> dict[str, Any]:
        return await self._endpoint.request(pipes.ROUTING_INFO, {"component": component})

    async def heartbeat(self, proclet_id: str, load: float) -> None:
        await self._endpoint.request(
            pipes.HEARTBEAT, {"proclet_id": proclet_id, "load": load}
        )

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None:
        await self._endpoint.notify(
            pipes.METRICS, {"proclet_id": proclet_id, "snapshot": snapshot}
        )

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None:
        await self._endpoint.notify(
            pipes.LOGS, {"proclet_id": proclet_id, "records": records}
        )

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None:
        await self._endpoint.notify(
            pipes.CALL_GRAPH, {"proclet_id": proclet_id, "edges": edges}
        )

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None:
        await self._endpoint.notify(
            pipes.TRACES, {"proclet_id": proclet_id, "spans": spans}
        )

    async def export_spans(self, proclet_id: str, spans: list[Any]) -> None:
        from repro.observability.tracing import spans_to_wire

        await self.export_traces(proclet_id, spans_to_wire(spans))


class _LoopPinnedRuntimeAPI:
    """Routes RuntimeAPI calls from worker loops back to the home loop.

    Control-plane machinery — the pipe endpoint's reader task, the
    manager's coroutines — lives on the loop the proclet started on.  With
    a multi-worker data plane, a component handler that needs
    ``StartComponent``/``RoutingInfo`` mid-request is running on a worker
    loop and must not await loop-bound objects directly; this wrapper
    trampolines the call to the home loop and bridges the result back.
    Calls already on the home loop (heartbeats, startup) pass straight
    through.
    """

    def __init__(self, inner: RuntimeAPI) -> None:
        self._inner = inner
        self._home: Optional[asyncio.AbstractEventLoop] = None

    def pin(self) -> None:
        """Capture the current loop as home (called from Proclet.start)."""
        self._home = asyncio.get_running_loop()

    async def _call(self, method: str, *args: Any) -> Any:
        fn = getattr(self._inner, method)
        home = self._home
        if home is None or home is asyncio.get_running_loop():
            return await fn(*args)
        return await asyncio.wrap_future(
            asyncio.run_coroutine_threadsafe(fn(*args), home)
        )

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None:
        return await self._call("register_replica", proclet_id, address, group_id)

    async def components_to_host(self, proclet_id: str) -> list[str]:
        return await self._call("components_to_host", proclet_id)

    async def start_component(self, component: str) -> None:
        return await self._call("start_component", component)

    async def routing_info(self, component: str) -> dict[str, Any]:
        return await self._call("routing_info", component)

    async def heartbeat(self, proclet_id: str, load: float) -> None:
        return await self._call("heartbeat", proclet_id, load)

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None:
        return await self._call("export_metrics", proclet_id, snapshot)

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None:
        return await self._call("export_logs", proclet_id, records)

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None:
        return await self._call("export_call_graph", proclet_id, edges)

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None:
        return await self._call("export_traces", proclet_id, spans)

    async def export_spans(self, proclet_id: str, spans: list[Any]) -> None:
        inner = self._inner
        if hasattr(inner, "export_spans"):
            return await self._call("export_spans", proclet_id, spans)
        from repro.observability.tracing import spans_to_wire

        return await self._call("export_traces", proclet_id, spans_to_wire(spans))


class RoutingResolver:
    """Resolves (component, routing key) -> replica address for RPC calls.

    Cache-aside over the proclet's :class:`RoutingTable`; misses trigger
    ``StartComponent`` + ``RoutingInfo`` round trips to the runtime.
    """

    def __init__(self, runtime: RuntimeAPI, table: RoutingTable) -> None:
        self._runtime = runtime
        self._table = table
        self._breakers = table.breakers
        # Keyed by (event loop, component): asyncio.Lock is loop-bound, and
        # with a multi-worker data plane resolution happens on whichever
        # worker loop is serving the calling request.  A per-loop lock
        # still coalesces the stampede that matters (the refresh round
        # trips), it just coalesces it per loop.
        self._locks: dict[tuple[int, str], asyncio.Lock] = {}

    async def resolve(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        route_key: Optional[Any] = None,
    ) -> str:
        key = route_key
        if (
            key is None
            and method.routing_index is not None
            and len(args) > method.routing_index
        ):
            key = args[method.routing_index]
        address = self._table.pick(reg.name, key)
        if address is not None:
            return address
        await self._refresh(reg.name)
        address = self._table.pick(reg.name, key)
        if address is None:
            raise Unavailable(f"no replicas known for {reg.name}", executed=False)
        return address

    async def _refresh(self, component: str) -> None:
        key = (id(asyncio.get_running_loop()), component)
        lock = self._locks.setdefault(key, asyncio.Lock())
        async with lock:
            if self._table.replicas(component):
                return
            await self._runtime.start_component(component)
            info = await self._runtime.routing_info(component)
            self.apply_routing_info(component, info)

    def apply_routing_info(self, component: str, info: dict[str, Any]) -> None:
        replicas = info.get("replicas", [])
        self._table.update_replicas(component, replicas)
        raw = info.get("assignment")
        if raw:
            self._table.update_assignment(Assignment.from_wire(raw))

    def report_outcome(
        self,
        reg: Registration,
        address: str,
        *,
        ok: bool,
        code: Optional[Any] = None,
        draining: bool = False,
        wrong_owner: bool = False,
    ) -> None:
        """Feed one attempt outcome into the failure-domain machinery.

        Classification:

        * success, or APPLICATION error — the replica executed the call,
          so it is healthy: record a breaker success.
        * RESOURCE_EXHAUSTED — overloaded, not broken: neutral (ejecting
          a shedding replica would dogpile the survivors).
        * draining UNAVAILABLE — the replica is leaving on purpose:
          neutral for the breaker, but drop the cached routing entry so
          the next call re-resolves to the post-drain replica set.
        * wrong-owner UNAVAILABLE — *our* routing assignment is stale
          (the ring changed mid-flight); the replica is healthy, so no
          breaker penalty, but the cached entry must go so the retry
          re-resolves against the current assignment.
        * anything else (UNAVAILABLE, DEADLINE_EXCEEDED, INTERNAL) —
          record a breaker failure and invalidate the cached routing
          entry, so the next attempt re-resolves through the runtime.
          The breaker matters when the refreshed view *still* contains
          the sick replica (the manager's sweep hasn't noticed yet):
          tripped breakers survive the refresh and keep picks away
          from it.
        """
        from repro.core.errors import ErrorCode

        if ok or code is ErrorCode.APPLICATION:
            if self._breakers is not None:
                self._breakers.record(reg.name, address, ok=True)
            return
        if code is ErrorCode.RESOURCE_EXHAUSTED:
            return
        if draining or wrong_owner:
            self._table.invalidate(reg.name)
            return
        if self._breakers is not None:
            self._breakers.record(reg.name, address, ok=False)
        self._table.invalidate(reg.name)

    def report_failure(self, reg: Registration, address: str) -> None:
        # Forget everything we know; next call re-resolves through the
        # runtime, which will have (or will soon have) a fresher view.
        self._table.invalidate(reg.name)


class Proclet:
    """One process's worth of the application plus its managing daemon."""

    def __init__(
        self,
        proclet_id: str,
        build: FrozenRegistry,
        config: AppConfig,
        runtime: RuntimeAPI,
        *,
        group_id: int = 0,
        replica_index: int = 0,
        listen_address: Optional[str] = None,
        heartbeat_interval_s: float = 1.0,
        call_graph: Optional[CallGraph] = None,
        state_dir: Optional[str] = None,
    ) -> None:
        self.proclet_id = proclet_id
        self.build = build
        self.config = config
        self.group_id = group_id
        self.replica_index = replica_index
        self._runtime = _LoopPinnedRuntimeAPI(runtime)
        self._codec = codec_by_name(config.codec)
        self._heartbeat_interval_s = heartbeat_interval_s

        from repro.observability.tracing import Tracer
        from repro.runtime.advisor import RoutingAdvisor

        self.call_graph = call_graph or CallGraph()
        self.metrics = MetricsRegistry()
        self.log_buffer = LogBuffer()
        # ``telemetry: off`` disables span creation and the client-side
        # latency histogram entirely (the control knob behind the E19
        # overhead gate); counters and heartbeats always flow.
        self.telemetry = getattr(config, "telemetry", "full")
        self.tracer = (
            Tracer(trace_rate=getattr(config, "trace_rate", None))
            if self.telemetry != "off"
            else None
        )
        self.advisor = RoutingAdvisor()
        self._method_latency = self.metrics.histogram("component_method_latency_s")
        self._method_calls = self.metrics.counter("component_method_calls")
        self._method_errors = self.metrics.counter("component_method_errors")
        # (component_id, method_index) -> pre-bound metric cells; the
        # per-RPC accounting path must not re-resolve labels every call.
        self._method_cells: dict[tuple[int, int], tuple[Any, Any, Any]] = {}

        from repro.observability.logs import ComponentLogger
        from repro.state import StateRuntime

        self.state = StateRuntime(
            proclet_id,
            state_dir if state_dir is not None else config.state_dir,
            num_shards=config.state_shards,
            fsync=config.state_fsync,
            snapshot_every=config.state_snapshot_every,
            metrics=self.metrics,
        )
        self._hosted: set[str] = set()
        self._local = LocalInvoker(
            version=build.version,
            call_graph=self.call_graph,
            resolver=self,
            settings=config.settings,
            logger_factory=lambda name, rid: ComponentLogger(self.log_buffer, name, rid),
            replica_id=replica_index,
            tracer=self.tracer,
            advisor=self.advisor,
            state_factory=self.state.component_state,
        )
        self._dispatcher = Dispatcher(
            build, self._codec, self._local, hosted=set(), tracer=self.tracer
        )
        # Admission is per worker loop: AdmissionController's futures and
        # deque are loop-bound, so each loop gets its own door with an even
        # split of the global budget.  (With workers=1 this degenerates to
        # exactly the old single controller.)
        workers = max(1, config.workers)
        self._admit_inflight = (
            -(-config.max_inflight // workers) if config.max_inflight > 0 else 0
        )
        self._admit_queue = max(1, -(-config.max_queue_depth // workers))
        self._admissions: dict[int, AdmissionController] = {}
        self._busy_s = 0.0
        self._last_heartbeat_busy = 0.0
        self._last_heartbeat_time: Optional[float] = None

        if listen_address is None:
            listen_address = "tcp://127.0.0.1:0"
        self._server = RPCServer(
            self._handle_rpc,
            codec=config.codec,
            version=build.version,
            address=listen_address,
            compress=config.compress_wire,
            workers=config.workers,
            uvloop_mode=config.uvloop,
            stream_threshold=config.stream_threshold_bytes,
            stream_chunk=config.stream_chunk_bytes,
        )
        self._pool = ConnectionPool(
            codec=config.codec,
            version=build.version,
            compress=config.compress_wire,
            stream_threshold=config.stream_threshold_bytes,
            stream_chunk=config.stream_chunk_bytes,
        )
        self.breakers = None
        if config.breakers_enabled:
            from repro.transport.breaker import BreakerPolicy, BreakerSet

            self.breakers = BreakerSet(
                BreakerPolicy(
                    consecutive_failures=config.breaker_failures,
                    open_for_s=config.breaker_open_for_s,
                ),
                metrics=self.metrics,
            )
        self._table = RoutingTable(self.breakers)
        self._resolver = RoutingResolver(self._runtime, self._table)
        self._remote = RemoteInvoker(
            codec=self._codec,
            pool=self._pool,
            resolver=self._resolver,
            call_graph=self.call_graph,
            timeout_s=config.call_timeout_s,
            max_retries=config.max_retries,
            tracer=self.tracer,
            metrics=self.metrics if self.telemetry != "off" else None,
        )
        self._heartbeat_task: Optional[asyncio.Task] = None
        self._stopped = False
        self.draining = False
        # In-flight requests tracked per worker loop: each loop's thread
        # only ever touches its own entry, so no lock is needed; drain()
        # polls the sum instead of waiting on a (loop-bound) Event.
        self._inflight_by_loop: dict[int, int] = {}
        self._drain_hist = self.metrics.histogram("replica_drain_s")
        self._worker_conn_gauge = self.metrics.gauge("worker_connections")
        self._worker_rate_gauge = self.metrics.gauge("worker_msgs_per_s")
        self._worker_queue_gauge = self.metrics.gauge("worker_queue_depth")
        self._worker_lag_gauge = self.metrics.gauge("worker_loop_lag_ms")

    # -- lifecycle -------------------------------------------------------------

    @property
    def address(self) -> str:
        return self._server.address

    async def start(self) -> None:
        """Serve, register, and learn what to host (§4.3's startup dance)."""
        self._runtime.pin()  # control plane lives on this loop from now on
        await self._server.start()
        self.state.set_self_address(self._server.address)
        await self._runtime.register_replica(
            self.proclet_id, self._server.address, self.group_id
        )
        components = await self._runtime.components_to_host(self.proclet_id)
        await self.host_components(components)
        self._heartbeat_task = asyncio.ensure_future(self._heartbeat_loop())

    async def drain(self, deadline_s: Optional[float] = None) -> float:
        """Graceful pre-shutdown: close the door, finish in-flight work.

        Stops accepting new connections and rejects new RPCs on existing
        ones with a retryable ``Unavailable(draining=True)``, then waits —
        up to ``deadline_s`` — for in-flight requests to finish.  Returns
        the drain duration in seconds.  The manager must have dropped this
        replica from routing *before* calling this, so new traffic is
        already steering elsewhere and the rejections only catch stragglers.
        """
        if deadline_s is None:
            deadline_s = self.config.drain_deadline_s
        start = time.monotonic()
        if not self.draining:
            self.draining = True
            await self._server.drain()
        # Poll the per-loop counters (requests may be finishing on worker
        # loops other than this one — an Event would be loop-bound).
        deadline = start + max(0.0, deadline_s)
        while self.inflight_rpcs > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        if self.inflight_rpcs > 0:
            log.warning(
                "%s: drain deadline (%.1fs) expired with %d RPCs in flight",
                self.proclet_id,
                deadline_s,
                self.inflight_rpcs,
            )
        duration = time.monotonic() - start
        self._drain_hist.observe(duration)
        return duration

    async def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
        for instance in self._local.instances().values():
            await shutdown_instance(instance)
        self.state.close()
        await self._pool.close()
        await self._server.stop()

    async def host_components(self, components: list[str]) -> None:
        """Adopt the runtime's decision about what this proclet runs.

        Newly assigned components are instantiated eagerly (failures should
        surface at (re)placement time, not first request); components moved
        away are shut down — the "runtime may move component replicas
        around" mechanics of §3.1.
        """
        hosted = set(components)
        for name in hosted:
            self.build.by_name(name)  # validate early: unknown names are bugs
        removed = self._hosted - hosted
        self._hosted = hosted
        self._dispatcher.set_hosted(hosted)
        for name in sorted(removed):
            await self._local.discard_instance(name)
            self.state.detach_component(name)  # flush; new owner replays
            self._table.invalidate(name)  # future calls re-resolve
        for name in sorted(hosted):
            reg = self.build.by_name(name)
            await self._local.instance(reg)

    @property
    def hosted(self) -> set[str]:
        return set(self._hosted)

    # -- data plane -------------------------------------------------------------

    async def _handle_rpc(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        trace: tuple[int, int] = (0, 0),
        deadline_ms: int = 0,
    ) -> bytes:
        if self.draining:
            # Door closed: the replica is leaving.  executed=False makes
            # the rejection safe to retry anywhere, draining=True tells the
            # caller's breaker this is a planned exit, not a failure.
            raise Unavailable(
                f"{self.proclet_id} is draining", executed=False, draining=True
            )
        # Pin the caller's deadline to our clock *before* admission
        # queueing, so time spent waiting for a slot burns the budget.
        arrival_deadline = (
            time.monotonic() + deadline_ms / 1000.0 if deadline_ms > 0 else None
        )
        lid = id(asyncio.get_running_loop())
        self._inflight_by_loop[lid] = self._inflight_by_loop.get(lid, 0) + 1
        try:
            return await self._admitted_rpc(
                component_id, method_index, args, trace, deadline_ms, arrival_deadline
            )
        finally:
            self._inflight_by_loop[lid] -= 1

    @property
    def inflight_rpcs(self) -> int:
        return sum(self._inflight_by_loop.values())

    def _admission_for_loop(self) -> AdmissionController:
        """This loop's share of the admission budget (created on first use;
        dict.setdefault keeps the two-threads-first-request race safe)."""
        lid = id(asyncio.get_running_loop())
        ctrl = self._admissions.get(lid)
        if ctrl is None:
            ctrl = self._admissions.setdefault(
                lid, AdmissionController(self._admit_inflight, self._admit_queue)
            )
        return ctrl

    async def _admitted_rpc(
        self,
        component_id: int,
        method_index: int,
        args: bytes,
        trace: tuple[int, int],
        deadline_ms: int,
        arrival_deadline: Optional[float],
    ) -> bytes:
        async with self._admission_for_loop():
            if arrival_deadline is not None:
                remaining_s = arrival_deadline - time.monotonic()
                if remaining_s <= 0:
                    raise DeadlineExceeded(
                        f"request expired before execution "
                        f"({deadline_ms}ms budget spent in transit/queue)",
                        executed=False,
                    )
                deadline_ms = max(1, int(remaining_s * 1000))
            start = time.perf_counter()
            failed = False
            try:
                return await self._dispatcher.handle(
                    component_id, method_index, args, trace, deadline_ms
                )
            except BaseException:
                failed = True
                raise
            finally:
                elapsed = time.perf_counter() - start
                self._busy_s += elapsed
                cells = self._method_cells.get((component_id, method_index))
                if cells is None:
                    try:
                        name = self.build.by_id(component_id).name
                        method = self.build.by_id(component_id).spec.methods[
                            method_index
                        ].name
                    except (ComponentNotFound, IndexError):
                        name, method = "?", "?"
                    cells = (
                        self._method_latency.bind(component=name, method=method),
                        self._method_calls.bind(component=name, method=method),
                        self._method_errors.bind(component=name, method=method),
                    )
                    self._method_cells[(component_id, method_index)] = cells
                latency, calls, errors = cells
                # trace[0] is the caller's trace id: a histogram exemplar
                # pivots a latency bucket straight to that trace.
                latency.observe(elapsed, exemplar=trace[0])
                calls.inc()
                if failed:
                    errors.inc()

    # -- stub resolution (the resolver LocalInvoker/contexts call) -------------

    def get_for(self, iface: type, caller: str) -> Any:
        reg = self.build.by_iface(iface)
        if reg.name in self._hosted:
            return make_stub(reg, self._local, caller)
        return make_stub(reg, self._remote, caller)

    def get(self, iface: type) -> Any:
        return self.get_for(iface, ROOT)

    # -- control plane ------------------------------------------------------------

    async def handle_control(self, type_: str, body: dict[str, Any]) -> dict[str, Any]:
        """Requests pushed from the envelope/runtime to this proclet."""
        if type_ == "host_components":
            await self.host_components(body.get("components", []))
            return {}
        if type_ == pipes.ROUTING_INFO:
            component = body["component"]
            self._resolver.apply_routing_info(component, body)
            # The state layer keeps its own assignment view: per-key
            # ownership checks need the assignment for components this
            # proclet *hosts*, not just ones it calls.
            self.state.apply_routing_info(body)
            return {}
        if type_ == pipes.DRAIN:
            drained_s = await self.drain(body.get("deadline_s"))
            # In-flight writes are done and the door is closed: flush and
            # export every owned shard so the manager can hand them to the
            # surviving owners before this process exits.
            handover = self.state.export_for_handover()
            return {"drained_s": drained_s, "handover": handover}
        if type_ == pipes.STATE_HANDOVER:
            replayed = self.state.import_handover(body.get("shards", []))
            return {"replayed": replayed}
        if type_ == pipes.SHUTDOWN:
            asyncio.ensure_future(self.stop())
            return {}
        if type_ == "health":
            return {"status": "serving", "hosted": sorted(self._hosted)}
        raise Unavailable(f"unknown control request {type_!r}")

    async def _heartbeat_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(self._heartbeat_interval_s)
                await self._send_heartbeat()
        except asyncio.CancelledError:
            pass
        except Exception:
            log.exception("%s: heartbeat loop failed", self.proclet_id)

    async def _send_heartbeat(self) -> None:
        now = time.monotonic()
        if self._last_heartbeat_time is None:
            load = 0.0
        else:
            interval = max(1e-9, now - self._last_heartbeat_time)
            load = (self._busy_s - self._last_heartbeat_busy) / interval
        self._last_heartbeat_time = now
        self._last_heartbeat_busy = self._busy_s
        for stats in self._server.worker_stats():
            # The proclet label keeps replicas distinct after the manager
            # merges snapshots (gauges are last-writer-wins per label set).
            kw = {"proclet": self.proclet_id, "worker": str(stats["worker"])}
            self._worker_conn_gauge.set(float(stats["connections"]), **kw)
            self._worker_rate_gauge.set(float(stats["msgs_per_s"]), **kw)
            self._worker_queue_gauge.set(float(stats["queue_depth"]), **kw)
            self._worker_lag_gauge.set(float(stats["loop_lag_ms"]), **kw)
        # Truncation accounting: buffers drop rather than grow without
        # bound, and every drop is visible deployment-wide.  Gauges with a
        # proclet label merge last-writer-wins per replica, so the values
        # stay exact (they are already cumulative within this process).
        kw = {"proclet": self.proclet_id}
        if self.tracer is not None and self.tracer.dropped:
            self.metrics.gauge("telemetry_dropped_spans").set(
                float(self.tracer.dropped), **kw
            )
        if self.log_buffer.dropped:
            self.metrics.gauge("telemetry_dropped_logs").set(
                float(self.log_buffer.dropped), **kw
            )
        if self.tracer is not None and self.tracer.unsampled:
            self.metrics.gauge("telemetry_unsampled_traces").set(
                float(self.tracer.unsampled), **kw
            )
        await self._runtime.heartbeat(self.proclet_id, load)
        await self._runtime.export_metrics(self.proclet_id, self.metrics.snapshot())
        await self._runtime.export_call_graph(self.proclet_id, self.call_graph.to_wire())
        spans = self.tracer.drain() if self.tracer is not None else []
        if spans:
            # export_spans lets in-process runtimes skip the wire encode /
            # decode round trip; pipe-backed runtimes encode internally.
            export = getattr(self._runtime, "export_spans", None)
            if export is not None:
                await export(self.proclet_id, spans)
            else:
                from repro.observability.tracing import spans_to_wire

                await self._runtime.export_traces(
                    self.proclet_id, spans_to_wire(spans)
                )
        from repro.observability.logs import records_to_wire

        records = self.log_buffer.drain()
        if records:
            await self._runtime.export_logs(self.proclet_id, records_to_wire(records))

    def context_for(self, reg: Registration) -> ComponentContext:
        return ComponentContext(
            component=reg.name,
            replica_id=self.replica_index,
            version=self.build.version,
            getter=lambda iface: self.get_for(iface, reg.name),
            config=self.config.settings,
            state=self.state.component_state(reg.name),
        )
