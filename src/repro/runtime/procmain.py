"""Entry point for subprocess proclets: ``python -m repro.runtime.procmain``.

The envelope launches this module with two arguments: the path of the
control UNIX socket to connect back on, and the path of a JSON spec::

    {
      "proclet_id":  "app-g2-r0",
      "group_id":    2,
      "modules":     ["repro.boutique"],      # imported to run @implements
      "components":  ["...Cart", "..."],      # the full deployment set
      "version":     "9a1b...",               # parent's version, must match
      "config":      { ... AppConfig fields ... }
    }

The child rebuilds the *same* frozen registry the parent has (same modules,
same component subset => same component ids and deployment version) and
refuses to start on a mismatch: a proclet from a stale build must never
join the deployment (§4.4).
"""

from __future__ import annotations

import asyncio
import importlib
import json
import sys

from repro.core.config import AppConfig
from repro.core.registry import global_registry
from repro.runtime.pipes import ControlEndpoint, StreamPipe
from repro.runtime.proclet import PipeRuntimeAPI, Proclet


async def amain(socket_path: str, spec_path: str) -> int:
    with open(spec_path) as f:
        spec = json.load(f)

    for module in spec.get("modules", []):
        importlib.import_module(module)

    registry = global_registry()
    wanted = set(spec["components"])
    # Freeze over exactly the parent's component set, found by name.
    from repro.core.component import component_name

    ifaces = [i for i in registry.interfaces() if component_name(i) in wanted]
    missing = wanted - {component_name(i) for i in ifaces}
    if missing:
        print(f"procmain: components not registered: {sorted(missing)}", file=sys.stderr)
        return 2
    build = registry.freeze(
        components=sorted(ifaces, key=component_name), salt=spec.get("salt", "")
    )
    if build.version != spec["version"]:
        print(
            f"procmain: version mismatch: built {build.version}, "
            f"parent expects {spec['version']} — refusing to join deployment",
            file=sys.stderr,
        )
        return 3

    config = AppConfig.from_dict(spec.get("config", {}))

    reader, writer = await asyncio.open_unix_connection(socket_path)
    pipe = StreamPipe(reader, writer)

    done = asyncio.Event()
    proclet: Proclet | None = None

    async def handle(type_: str, body: dict) -> dict:
        assert proclet is not None
        result = await proclet.handle_control(type_, body)
        if type_ == "shutdown":
            done.set()
        return result

    endpoint = ControlEndpoint(pipe, handle, name=spec["proclet_id"])
    endpoint.start()
    runtime = PipeRuntimeAPI(endpoint)

    proclet = Proclet(
        spec["proclet_id"],
        build,
        config,
        runtime,
        group_id=spec["group_id"],
        replica_index=spec.get("replica_index", 0),
    )
    await proclet.start()

    # Serve until shutdown is pushed or the control pipe dies (orphaned
    # proclets must not outlive their envelope).
    while not done.is_set() and not endpoint.closed:
        try:
            await asyncio.wait_for(done.wait(), timeout=0.5)
        except asyncio.TimeoutError:
            pass
    if not done.is_set() and config.drain_deadline_s > 0:
        # The control pipe died without an orderly shutdown (or drain);
        # give in-flight RPCs a short grace period before exiting instead
        # of dropping them mid-execution.
        try:
            await proclet.drain(min(1.0, config.drain_deadline_s))
        except Exception:
            pass
    await proclet.stop()
    await endpoint.close()
    return 0


def _install_uvloop(mode: str) -> None:
    """Make the proclet's *main* loop uvloop too (worker loops pick their
    policy per-loop via transport.worker.make_loop).  Must run before
    asyncio.run; a missing accelerator never blocks startup."""
    if mode == "off":
        return
    try:
        import uvloop
    except ImportError:
        if mode == "on":
            print(
                "procmain: uvloop requested (uvloop='on') but not installed; "
                "using the stdlib event loop",
                file=sys.stderr,
            )
        return
    uvloop.install()


def main() -> None:
    if len(sys.argv) != 3:
        print("usage: python -m repro.runtime.procmain <socket> <spec.json>", file=sys.stderr)
        raise SystemExit(64)
    try:
        with open(sys.argv[2]) as f:
            uvloop_mode = json.load(f).get("config", {}).get("uvloop", "auto")
    except (OSError, ValueError):
        uvloop_mode = "auto"
    _install_uvloop(uvloop_mode)
    raise SystemExit(asyncio.run(amain(sys.argv[1], sys.argv[2])))


if __name__ == "__main__":
    main()
