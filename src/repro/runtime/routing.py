"""Affinity (sliced) routing — the Slicer-style mechanism of §5.2.

    "The performance of some components improves greatly when requests are
    routed with affinity. ... the routing is most efficient when embedded
    in the application itself."

A component method marked ``@routed(by="key")`` is called through a
*routing assignment*: the hash space ``[0, 2^64)`` is divided into slices,
each owned by one replica, so equal keys always reach the same replica
while the assignment generation is unchanged.

Assignments are built on a consistent-hash ring with virtual nodes, so
adding or removing one replica moves only ~1/n of the key space — the
property tested in ``tests/runtime/test_routing.py``.  The manager builds
assignments and pushes them to proclets; a replica that receives a key it
no longer owns answers "unavailable", forcing the caller to refresh.

Unrouted methods use :class:`LoadBalancer` (power-of-two-choices over
per-address in-flight counts, degrading to round-robin when counts are
unknown).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.core.errors import PlacementError

HASH_SPACE = 1 << 64
#: Virtual nodes per replica: more vnodes = smoother balance, bigger
#: assignments.  160 keeps max/min slice-weight skew under ~20% for small n.
VNODES = 160


def key_hash(key: Any) -> int:
    """Stable 64-bit hash of a routing key (stringified).

    ``hash()`` is salted per process; routing must agree across proclets,
    so we hash the repr through blake2b instead.
    """
    data = repr(key).encode("utf-8", "surrogatepass")
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


def _vnode_hash(replica: str, index: int) -> int:
    data = f"{replica}#{index}".encode()
    return int.from_bytes(hashlib.blake2b(data, digest_size=8).digest(), "big")


@dataclass(frozen=True)
class Assignment:
    """One generation of the slice -> replica map for one component."""

    component: str
    generation: int
    #: Sorted vnode positions and the replica owning the arc that *ends* at
    #: each position (consistent-hash ring semantics).
    points: tuple[int, ...]
    owners: tuple[str, ...]
    replicas: tuple[str, ...] = ()

    def replica_for(self, key: Any) -> str:
        """The replica owning ``key`` under this assignment."""
        if not self.points:
            raise PlacementError(f"assignment for {self.component} has no replicas")
        h = key_hash(key)
        index = bisect.bisect_right(self.points, h) % len(self.points)
        return self.owners[index]

    def owners_for(self, key: Any):
        """Yield distinct replicas in ring order starting at ``key``'s owner.

        The first yielded replica is :meth:`replica_for`'s answer; the rest
        are the failover order a caller should try when earlier replicas
        are ejected (consistent across proclets, so a key's traffic lands
        on the *same* fallback everywhere).
        """
        if not self.points:
            raise PlacementError(f"assignment for {self.component} has no replicas")
        h = key_hash(key)
        start = bisect.bisect_right(self.points, h) % len(self.points)
        seen: set[str] = set()
        for i in range(len(self.owners)):
            owner = self.owners[(start + i) % len(self.owners)]
            if owner not in seen:
                seen.add(owner)
                yield owner
                if len(seen) == len(self.replicas):
                    return

    def to_wire(self) -> dict[str, Any]:
        return {
            "component": self.component,
            "generation": self.generation,
            "points": list(self.points),
            "owners": list(self.owners),
            "replicas": list(self.replicas),
        }

    @classmethod
    def from_wire(cls, raw: dict[str, Any]) -> "Assignment":
        return cls(
            component=raw["component"],
            generation=raw["generation"],
            points=tuple(raw["points"]),
            owners=tuple(raw["owners"]),
            replicas=tuple(raw["replicas"]),
        )


def build_assignment(
    component: str, replicas: Sequence[str], generation: int, vnodes: int = VNODES
) -> Assignment:
    """Build a consistent-hash assignment over ``replicas``."""
    if not replicas:
        raise PlacementError(f"cannot build assignment for {component} with no replicas")
    pairs: list[tuple[int, str]] = []
    for replica in replicas:
        for i in range(vnodes):
            pairs.append((_vnode_hash(replica, i), replica))
    pairs.sort()
    points = tuple(p for p, _ in pairs)
    owners = tuple(o for _, o in pairs)
    return Assignment(
        component=component,
        generation=generation,
        points=points,
        owners=owners,
        replicas=tuple(replicas),
    )


class LoadBalancer:
    """Replica picker for unrouted calls.

    Power-of-two-choices on in-flight counts when the caller reports them,
    otherwise round-robin.  Deliberately simple: the paper's point is that
    the *runtime* owns this decision, not that it is novel.
    """

    def __init__(self, seed: Optional[int] = None) -> None:
        self._rr = itertools.count()
        self._rng = random.Random(seed)
        self._inflight: dict[str, int] = {}

    def pick(self, replicas: Sequence[str]) -> str:
        if not replicas:
            raise PlacementError("no replicas to balance across")
        if len(replicas) == 1:
            return replicas[0]
        if self._inflight:
            a, b = self._rng.sample(list(replicas), 2)
            return a if self._inflight.get(a, 0) <= self._inflight.get(b, 0) else b
        return replicas[next(self._rr) % len(replicas)]

    def acquire(self, replica: str) -> None:
        self._inflight[replica] = self._inflight.get(replica, 0) + 1

    def release(self, replica: str) -> None:
        count = self._inflight.get(replica, 0) - 1
        if count <= 0:
            self._inflight.pop(replica, None)
        else:
            self._inflight[replica] = count


class RoutingTable:
    """A proclet's cached view of assignments and replica sets.

    When constructed with a :class:`~repro.transport.breaker.BreakerSet`,
    every pick consults it: replicas whose breaker is OPEN are skipped
    *before* an attempt is made — failover happens inside the same
    attempt, without spending the caller's retry budget.  Routed keys
    fall back along the consistent-hash ring (same fallback replica on
    every proclet); when every replica is ejected the pick degrades to
    the least-recently-tripped one rather than a total outage.
    """

    def __init__(self, breakers: Optional[Any] = None) -> None:
        self._assignments: dict[str, Assignment] = {}
        self._replicas: dict[str, tuple[str, ...]] = {}
        self._balancers: dict[str, LoadBalancer] = {}
        self._breakers = breakers

    @property
    def breakers(self) -> Optional[Any]:
        return self._breakers

    def update_assignment(self, assignment: Assignment) -> None:
        current = self._assignments.get(assignment.component)
        if current is None or assignment.generation > current.generation:
            self._assignments[assignment.component] = assignment
            self._replicas[assignment.component] = assignment.replicas
            if self._breakers is not None:
                self._breakers.retain(assignment.component, assignment.replicas)

    def update_replicas(self, component: str, replicas: Sequence[str]) -> None:
        self._replicas[component] = tuple(replicas)
        if self._breakers is not None:
            self._breakers.retain(component, replicas)

    def invalidate(self, component: str) -> None:
        self._assignments.pop(component, None)
        self._replicas.pop(component, None)

    def assignment(self, component: str) -> Optional[Assignment]:
        return self._assignments.get(component)

    def replicas(self, component: str) -> tuple[str, ...]:
        return self._replicas.get(component, ())

    def pick(self, component: str, routing_key: Optional[Any]) -> Optional[str]:
        """Choose a replica, or None if nothing is cached."""
        if routing_key is not None:
            assignment = self._assignments.get(component)
            if assignment is not None and assignment.points:
                if self._breakers is None:
                    return assignment.replica_for(routing_key)
                return self._pick_routed(component, assignment, routing_key)
        replicas = self._replicas.get(component)
        if not replicas:
            return None
        allowed: Sequence[str] = replicas
        if self._breakers is not None:
            allowed = self._breakers.filter(component, replicas)
            if not allowed:
                return self._breakers.least_recently_tripped(component, replicas)
        balancer = self._balancers.get(component)
        if balancer is None:
            balancer = LoadBalancer()
            self._balancers[component] = balancer
        choice = balancer.pick(allowed)
        if self._breakers is not None:
            self._breakers.admit(component, choice)
        return choice

    def _pick_routed(
        self, component: str, assignment: Assignment, routing_key: Any
    ) -> str:
        """Affinity pick that walks the ring past ejected replicas."""
        breakers = self._breakers
        first = None
        for owner in assignment.owners_for(routing_key):
            if first is None:
                first = owner
            if breakers.peek(component, owner):
                breakers.admit(component, owner)
                return owner
        # Every replica ejected: prefer the least-recently-tripped, else
        # fall back to the key's true owner.
        degraded = breakers.least_recently_tripped(component, assignment.replicas)
        return degraded if degraded is not None else first

    def components(self) -> list[str]:
        return sorted(set(self._replicas) | set(self._assignments))


def moved_fraction(old: Assignment, new: Assignment, samples: int = 2000) -> float:
    """Fraction of sampled keys whose owner changed between generations.

    Used by tests and benchmarks to verify the minimal-movement property of
    consistent hashing (adding one of n replicas should move ~1/n keys).
    """
    moved = 0
    for i in range(samples):
        key = f"sample-key-{i}"
        if old.replica_for(key) != new.replica_for(key):
            moved += 1
    return moved / samples
