"""Placement: deciding which components share an OS process (§3.1, §5.1).

Two jobs live here:

* Turning a resolved configuration into a concrete :class:`PlacementPlan`
  (groups -> proclets -> replicas), the thing deployers execute.
* Recommending *better* placements from call-graph telemetry: merging
  chatty component pairs into co-location groups, the optimization the
  paper's runtime performs automatically ("to co-locate two chatty
  components in the same OS process so that communication ... is done
  locally", §3.1).

The recommendation algorithm is greedy agglomerative clustering over the
remote-traffic graph: repeatedly merge the pair of groups with the highest
inter-group traffic until the gain falls below ``min_traffic`` or groups
would exceed ``max_group_size``.  Greedy is not optimal, but placement
quality is monotone in merged traffic, and the benchmarks show it captures
nearly all of the co-location win on boutique-shaped graphs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.call_graph import CallGraph, ROOT
from repro.core.config import ResolvedConfig
from repro.core.errors import PlacementError


@dataclass(frozen=True)
class GroupPlacement:
    """One co-location group and its replication factor."""

    group_id: int
    components: tuple[str, ...]
    replicas: int


@dataclass(frozen=True)
class PlacementPlan:
    """The complete placement the manager executes."""

    groups: tuple[GroupPlacement, ...]

    def group_of(self, component: str) -> GroupPlacement:
        for group in self.groups:
            if component in group.components:
                return group
        raise PlacementError(f"component {component!r} not placed")

    def components(self) -> list[str]:
        return [c for g in self.groups for c in g.components]

    def validate(self, expected: Sequence[str]) -> None:
        placed = self.components()
        if sorted(placed) != sorted(expected):
            missing = set(expected) - set(placed)
            extra = set(placed) - set(expected)
            raise PlacementError(
                f"placement does not cover the deployment exactly "
                f"(missing={sorted(missing)}, extra={sorted(extra)})"
            )
        if len(set(placed)) != len(placed):
            raise PlacementError("a component appears in two groups")


def plan_from_config(resolved: ResolvedConfig) -> PlacementPlan:
    """Build the initial plan from configuration.

    A group's replica count is the max over its members' counts: replicating
    a process replicates every component inside it.
    """
    groups = []
    for i, members in enumerate(resolved.groups):
        replicas = max(resolved.replicas[name] for name in members)
        groups.append(GroupPlacement(group_id=i, components=tuple(members), replicas=replicas))
    return PlacementPlan(groups=tuple(groups))


def recommend_groups(
    call_graph: CallGraph,
    components: Sequence[str],
    *,
    max_group_size: int = 0,
    min_traffic: int = 1,
) -> list[tuple[str, ...]]:
    """Suggest co-location groups from observed remote traffic (§5.1).

    Returns groups covering every component in ``components``; singletons
    for components with no qualifying traffic.  ``max_group_size`` of 0
    means unbounded (full co-location is allowed if the graph justifies it).
    """
    parent: dict[str, str] = {c: c for c in components}
    size: dict[str, int] = {c: 1 for c in components}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    # Candidate merges, heaviest remote traffic first.
    edges = []
    for (caller, callee), stats in call_graph.pair_traffic().items():
        if caller == ROOT or caller not in parent or callee not in parent:
            continue
        if caller == callee:
            continue
        traffic = stats.remote_calls + stats.local_calls
        if traffic >= min_traffic:
            edges.append((traffic, caller, callee))
    edges.sort(reverse=True)

    for traffic, a, b in edges:
        ra, rb = find(a), find(b)
        if ra == rb:
            continue
        if max_group_size and size[ra] + size[rb] > max_group_size:
            continue
        parent[rb] = ra
        size[ra] += size[rb]

    groups: dict[str, list[str]] = {}
    for c in components:
        groups.setdefault(find(c), []).append(c)
    return [tuple(sorted(members)) for members in groups.values()]
