"""The global manager: all control-plane decisions (§4.3, Figure 3).

    "a global manager that orchestrates the execution of the proclets ...
    interacts with the envelopes to collect health and load information of
    the running components; to aggregate metrics, logs, and traces ... and
    to handle requests to start new components."

The manager owns:

* the placement plan (which components share a process, from config or
  from call-graph recommendations),
* the replica lifecycle (``StartComponent`` requests, autoscaling
  decisions, restart-on-death), executed through a deployer-provided
  :class:`ReplicaLauncher` — the manager decides, the deployer does, which
  is how one manager drives subprocesses, threads, or simulated pods,
* routing: replica sets and sliced assignments per component, with
  generations bumped on every membership change,
* telemetry aggregation: metrics, logs, health.

It deliberately implements *no data plane*: proclets talk to each other
directly (§4.3).
"""

from __future__ import annotations

import asyncio
import logging
import time
from dataclasses import dataclass, field
from typing import Any, Optional, Protocol

from repro.core.config import ResolvedConfig
from repro.core.errors import ComponentNotFound, PlacementError
from repro.core.registry import FrozenRegistry
from repro.observability.logs import LogAggregator, records_from_wire
from repro.observability.metrics import MetricsRegistry
from repro.runtime.autoscaler import Autoscaler
from repro.runtime.health import HealthState, HealthTracker
from repro.runtime.placement import PlacementPlan, plan_from_config
from repro.runtime.routing import Assignment, build_assignment

log = logging.getLogger("repro.runtime.manager")


class ReplicaLauncher(Protocol):
    """Deployer-side effector for the manager's decisions."""

    async def start_replica(self, group_id: int, replica_index: int) -> None:
        """Launch a new proclet for ``group_id`` (async: it will register)."""
        ...

    async def stop_replica(self, proclet_id: str) -> None:
        """Stop a running proclet."""
        ...

    async def update_hosting(self, proclet_id: str, components: list[str]) -> None:
        """Push a new hosted-component set to a running proclet (used by
        live re-placement, §3.1/§5.1)."""
        ...

    async def drain_replica(
        self, proclet_id: str, deadline_s: float
    ) -> Optional[dict[str, Any]]:
        """Let the proclet finish in-flight RPCs before ``stop_replica``.

        Returns the proclet's drain response — ``{"drained_s": ...,
        "handover": [shard manifests]}`` — or None when the proclet is
        already gone.  The manager tolerates launchers that predate this
        method (``drain_replica`` absent or None) by hard-stopping, but
        new deployers should implement it: graceful drain is how shrink,
        re-placement, and remediation retire replicas without dropping
        in-flight work.
        """
        ...


@dataclass
class ProcletInfo:
    proclet_id: str
    group_id: int
    address: str
    replica_index: int
    load: float = 0.0
    registered_at: float = 0.0


@dataclass
class GroupState:
    group_id: int
    components: tuple[str, ...]
    target_replicas: int
    next_replica_index: int = 0
    #: Distinct index for every launch, handed to the new proclet as its
    #: replica identity (routed components partition state by it).
    launch_seq: int = 0
    launching: int = 0
    proclets: dict[str, ProcletInfo] = field(default_factory=dict)
    registered_event: asyncio.Event = field(default_factory=asyncio.Event)


class Manager:
    """The deployment's brain.  One per application version."""

    def __init__(
        self,
        build: FrozenRegistry,
        resolved: ResolvedConfig,
        launcher: ReplicaLauncher,
        *,
        plan: Optional[PlacementPlan] = None,
        clock=time.monotonic,
        autoscale_enabled: bool = False,
    ) -> None:
        self.build = build
        self.resolved = resolved
        self.launcher = launcher
        self.clock = clock
        self.plan = plan or plan_from_config(resolved)
        self.plan.validate(build.names())
        self.autoscale_enabled = autoscale_enabled

        # Manager-side telemetry is split: proclets ship *cumulative*
        # snapshots on every heartbeat, which we store per proclet (latest
        # wins — merging cumulative data additively every heartbeat would
        # double-count), while the manager's own counters (drain, state
        # handover) live in a private registry.  ``self.metrics`` exposes
        # the merged deployment-wide view.
        self._own_metrics = MetricsRegistry()
        self._proclet_metrics: dict[str, dict[str, Any]] = {}
        self._merged_metrics: Optional[MetricsRegistry] = None
        self.logs = LogAggregator()
        self.health = HealthTracker()
        # The bird's-eye call graph (merged from every proclet, §5.1).
        from repro.core.call_graph import CallGraph
        from repro.observability.signals import SignalBoard, default_slos
        from repro.observability.timeseries import TelemetryPipeline, TimeSeriesStore
        from repro.observability.tracestore import TraceStore

        self.call_graph = CallGraph()
        # Cross-proclet traces, merged from every proclet's spans: the
        # tail-sampling store (Tracer-compatible query surface).
        app = resolved.app
        self.tracer = TraceStore(
            max_traces=getattr(app, "trace_max_traces", 2000),
            sample_rate=getattr(app, "trace_sample_rate", 1.0),
        )
        # Live pipeline: per-second series from snapshot deltas, and the
        # anomaly/SLO signal board evaluated on every telemetry tick.
        slo_latency_ms = getattr(app, "slo_latency_ms", 250.0)
        self.timeseries = TimeSeriesStore()
        self.pipeline = TelemetryPipeline(
            self.timeseries, slow_threshold_s=slo_latency_ms / 1000.0
        )
        self.signals = SignalBoard(
            self.timeseries,
            slos=default_slos(
                error_budget=getattr(app, "slo_error_budget", 0.01),
                latency_budget=getattr(app, "slo_latency_budget", 0.05),
            ),
        )
        # The closed-loop remediation controller (ROADMAP item 2): consumes
        # the signal board + health/breaker evidence on the telemetry tick,
        # acts through this manager, bounded by guardrails.
        from repro.runtime.remediation import RemediationController

        self.remediation = RemediationController(self, app)

        self._groups: dict[int, GroupState] = {}
        self._component_group: dict[str, int] = {}
        for gp in self.plan.groups:
            state = GroupState(gp.group_id, gp.components, gp.replicas)
            self._groups[gp.group_id] = state
            for name in gp.components:
                self._component_group[name] = gp.group_id
        self._assignments: dict[str, Assignment] = {}
        self._generations: dict[str, int] = {}
        self._autoscalers: dict[int, Autoscaler] = {
            gid: Autoscaler(resolved.app.autoscale) for gid in self._groups
        }
        self._lock = asyncio.Lock()

    # -- Table 1 API (called by envelopes on behalf of proclets) --------------

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None:
        """RegisterReplica: a proclet is alive and serving at ``address``."""
        async with self._lock:
            group = self._group(group_id)
            info = ProcletInfo(
                proclet_id=proclet_id,
                group_id=group_id,
                address=address,
                replica_index=group.next_replica_index,
                registered_at=self.clock(),
            )
            group.next_replica_index += 1
            group.proclets[proclet_id] = info
            if group.launching > 0:
                group.launching -= 1
            self.health.heartbeat(proclet_id, self.clock())
            self._bump_group_routing(group)
            group.registered_event.set()
        log.debug("registered %s at %s (group %d)", proclet_id, address, group_id)

    async def components_to_host(self, proclet_id: str) -> list[str]:
        """ComponentsToHost: what should this proclet run?"""
        info = self._find_proclet(proclet_id)
        if info is None:
            raise ComponentNotFound(f"unknown proclet {proclet_id!r}")
        return sorted(self._groups[info.group_id].components)

    async def start_component(self, component: str) -> None:
        """StartComponent: ensure at least one replica serves ``component``."""
        group = self._group_for_component(component)
        await self._ensure_replicas(group, minimum=1)

    async def routing_info(self, component: str) -> dict[str, Any]:
        """Current replica set and (for routed components) the assignment."""
        group = self._group_for_component(component)
        addresses = self._healthy_addresses(group)
        info: dict[str, Any] = {"component": component, "replicas": addresses}
        if self._is_routed(component) and addresses:
            assignment = self._assignments.get(component)
            if assignment is None or set(assignment.replicas) != set(addresses):
                assignment = self._rebuild_assignment(component, addresses)
            info["assignment"] = assignment.to_wire()
        return info

    async def heartbeat(self, proclet_id: str, load: float) -> None:
        info = self._find_proclet(proclet_id)
        if info is None:
            return
        info.load = load
        self.health.heartbeat(proclet_id, self.clock())

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None:
        # Latest cumulative snapshot per proclet; retained after death so
        # deployment-wide counters stay monotonic for delta computation.
        self._proclet_metrics[proclet_id] = snapshot
        self._merged_metrics = None

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None:
        self.logs.ingest(records_from_wire(records))

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None:
        self.call_graph.replace_from_wire(proclet_id, edges)

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None:
        from repro.observability.tracing import spans_from_wire

        self.tracer.ingest(spans_from_wire(spans))

    def ingest_spans(self, spans: list[Any]) -> None:
        """Ingest already-materialized Span objects (same-process envelopes)."""
        self.tracer.ingest(spans)

    # -- control loops ----------------------------------------------------------

    async def sweep(self) -> None:
        """Health sweep: detect dead proclets, repair routing, restart."""
        now = self.clock()
        newly_dead = self.health.sweep(now)
        for proclet_id in newly_dead:
            info = self._find_proclet(proclet_id)
            if info is None:
                continue
            log.warning("proclet %s (group %d) died", proclet_id, info.group_id)
            group = self._groups[info.group_id]
            group.proclets.pop(proclet_id, None)
            self.health.remove(proclet_id)
            self._bump_group_routing(group)
            await self._ensure_replicas(group, minimum=group.target_replicas)

    async def apply_placement(self, groups: list[tuple[str, ...]]) -> None:
        """Re-place components across the *running* deployment (§3.1, §5.1).

            "The runtime may also move component replicas around, e.g., to
            co-locate two chatty components in the same OS process."

        ``groups`` is a new, complete co-location partition (typically from
        :func:`repro.runtime.placement.recommend_groups` over the merged
        call graph).  No process is necessarily restarted: each existing
        proclet is re-assigned to the new group that overlaps its current
        components the most, gets its new hosted set pushed down, and
        callers re-resolve on their next call (a stale address answers
        "unavailable" and the stub retries through fresh routing info).
        Proclets whose components all moved elsewhere are stopped; new
        groups without any adopted proclet start lazily on first use.

        Components with in-memory state lose it when they move — the same
        contract as a replica restart, which applications must already
        tolerate (§8.3).
        """
        from repro.runtime.placement import GroupPlacement

        plan = PlacementPlan(
            groups=tuple(
                GroupPlacement(
                    group_id=i,
                    components=tuple(members),
                    replicas=max(self.resolved.replicas[n] for n in members),
                )
                for i, members in enumerate(groups)
            )
        )
        plan.validate(self.build.names())

        async with self._lock:
            old_components_of = {
                info.proclet_id: set(self._groups[info.group_id].components)
                for info in self.proclets()
            }
            old_infos = self.proclets()

            self.plan = plan
            self._groups = {}
            self._component_group = {}
            for gp in plan.groups:
                state = GroupState(gp.group_id, gp.components, gp.replicas)
                self._groups[gp.group_id] = state
                for name in gp.components:
                    self._component_group[name] = gp.group_id
            self._autoscalers = {
                gid: Autoscaler(self.resolved.app.autoscale) for gid in self._groups
            }

            to_stop: list[str] = []
            pushes: list[tuple[str, list[str]]] = []
            for info in old_infos:
                old_set = old_components_of[info.proclet_id]
                best: Optional[GroupState] = None
                best_score = (0, 0.0)
                for group in self._groups.values():
                    overlap = len(old_set & set(group.components))
                    if overlap == 0:
                        continue
                    # Prefer max overlap; break ties toward emptier groups
                    # so merged groups don't stack every old proclet.
                    score = (overlap, -len(group.proclets))
                    if best is None or score > best_score:
                        best, best_score = group, score
                if best is None:
                    to_stop.append(info.proclet_id)
                    continue
                info.group_id = best.group_id
                best.proclets[info.proclet_id] = info
                pushes.append((info.proclet_id, sorted(best.components)))

            for group in self._groups.values():
                self._bump_group_routing(group)

        # Effectful steps outside the lock: pushes and stops go through the
        # deployer, which may call back into the manager.
        for proclet_id, components in pushes:
            await self.launcher.update_hosting(proclet_id, components)
        for proclet_id in to_stop:
            # Routing was rebuilt without these proclets above; retire
            # gracefully so their in-flight requests complete.
            self.health.remove(proclet_id)
            await self._retire_replica(proclet_id)
        log.info(
            "re-placed into %d groups (%d proclets reassigned, %d stopped)",
            len(self._groups),
            len(pushes),
            len(to_stop),
        )

    async def autoscale_tick(self) -> None:
        """One autoscaler pass over every group (mean load per replica)."""
        if not self.autoscale_enabled:
            return
        now = self.clock()
        for group in self._groups.values():
            live = [p for p in group.proclets.values() if self._is_live(p.proclet_id)]
            if not live:
                continue
            utilization = sum(p.load for p in live) / len(live)
            decision = self._autoscalers[group.group_id].decide(
                now=now, current_replicas=len(live), utilization=utilization
            )
            if decision.desired > len(live):
                group.target_replicas = decision.desired
                await self._ensure_replicas(group, minimum=decision.desired)
            elif decision.desired < len(live):
                group.target_replicas = decision.desired
                await self._shrink_group(group, decision.desired)

    async def remediation_tick(self) -> list[dict[str, Any]]:
        """One controller pass: evidence -> guarded actions (ROADMAP item 2).

        The deployer calls this right after :meth:`telemetry_tick` so the
        controller sees this second's fresh series and signal verdicts.
        A no-op unless ``AppConfig.remediation`` is ``on`` or ``observe``.
        """
        return await self.remediation.tick()

    # -- remediation executors (the controller's effector surface) ---------------

    async def remediate_restart(self, proclet_id: str) -> None:
        """Replace one replica: out of routing, drain, stop, re-launch.

        The routing bump happens *first* so callers steer elsewhere while
        the victim drains — the same order as :meth:`_shrink_group`.
        """
        info = self._find_proclet(proclet_id)
        if info is None:
            return
        group = self._groups[info.group_id]
        group.proclets.pop(proclet_id, None)
        self.health.remove(proclet_id)
        self._bump_group_routing(group)
        await self._retire_replica(proclet_id, components=group.components)
        await self._ensure_replicas(group, minimum=group.target_replicas)

    async def remediate_eject(self, proclet_id: str) -> None:
        """Remove one replica from routing and retire it, no replacement.

        Chosen over restart when the group already holds its target
        strength without the victim (the guardrails additionally refuse to
        eject below the autoscale floor).
        """
        info = self._find_proclet(proclet_id)
        if info is None:
            return
        group = self._groups[info.group_id]
        group.proclets.pop(proclet_id, None)
        self.health.remove(proclet_id)
        self._bump_group_routing(group)
        await self._retire_replica(proclet_id, components=group.components)

    async def remediate_scale_up(self, group_id: int, *, ceiling: int) -> None:
        """Add one replica to a group, clamped to ``ceiling``."""
        group = self._group(group_id)
        live = [p for p in group.proclets.values() if self._is_live(p.proclet_id)]
        desired = min(ceiling, max(group.target_replicas, len(live)) + 1)
        if desired <= len(live):
            return
        group.target_replicas = desired
        # Remediation scale-ups must stick until the incident resolves:
        # raise the autoscaler's floor too, or its next tick would undo
        # the capacity the controller just added.
        scaler = self._autoscalers.get(group_id)
        if scaler is not None:
            scaler.raise_floor(desired, now=self.clock())
        await self._ensure_replicas(group, minimum=desired)

    async def remediate_isolate(self, component: str) -> None:
        """Give ``component`` its own process (live re-placement, §5.1).

        The escalation endpoint for a persistent offender that restarts
        and extra replicas did not fix: evict it from its co-location
        group so it stops taxing its neighbours.  No-op when the
        component already runs alone.
        """
        group = self._group_for_component(component)
        if len(group.components) < 2:
            return
        new_groups: list[tuple[str, ...]] = []
        for g in self._groups.values():
            if g.group_id == group.group_id:
                rest = tuple(c for c in g.components if c != component)
                new_groups.append((component,))
                if rest:
                    new_groups.append(rest)
            else:
                new_groups.append(g.components)
        await self.apply_placement(new_groups)

    # -- telemetry ---------------------------------------------------------------

    @property
    def metrics(self) -> MetricsRegistry:
        """The merged deployment-wide registry (own + every proclet's latest)."""
        merged = self._merged_metrics
        if merged is None:
            merged = MetricsRegistry()
            merged.merge_snapshot(self._own_metrics.snapshot())
            for snapshot in self._proclet_metrics.values():
                merged.merge_snapshot(snapshot)
            self._merged_metrics = merged
        return merged

    def telemetry_tick(self, now: Optional[float] = None) -> None:
        """One pass of the live pipeline (the deployer calls this at ~1 Hz).

        Diffs the merged registry into per-second series, records control
        plane gauges, evaluates the anomaly/SLO signal board, and lets the
        trace store finalize quiescent traces.
        """
        now = time.time() if now is None else now
        self.pipeline.tick(self.metrics, now)
        for group in self._groups.values():
            live = [p for p in group.proclets.values() if self._is_live(p.proclet_id)]
            scope = f"group{group.group_id}"
            self.timeseries.record("replicas", scope, now, float(len(live)))
            if live:
                self.timeseries.record(
                    "utilization", scope, now, sum(p.load for p in live) / len(live)
                )
        self.signals.evaluate(now)
        maintain = getattr(self.tracer, "maintain", None)
        if maintain is not None:
            maintain()

    # -- queries ------------------------------------------------------------------

    def replica_addresses(self, component: str) -> list[str]:
        return self._healthy_addresses(self._group_for_component(component))

    def proclets(self) -> list[ProcletInfo]:
        return [p for g in self._groups.values() for p in g.proclets.values()]

    def group_states(self) -> dict[int, GroupState]:
        return dict(self._groups)

    def total_replicas(self) -> int:
        return sum(len(g.proclets) for g in self._groups.values())

    # -- internals -------------------------------------------------------------------

    def _group(self, group_id: int) -> GroupState:
        try:
            return self._groups[group_id]
        except KeyError:
            raise PlacementError(f"unknown group {group_id}") from None

    def _group_for_component(self, component: str) -> GroupState:
        try:
            return self._groups[self._component_group[component]]
        except KeyError:
            raise ComponentNotFound(f"component {component!r} is not placed") from None

    def _find_proclet(self, proclet_id: str) -> Optional[ProcletInfo]:
        for group in self._groups.values():
            info = group.proclets.get(proclet_id)
            if info is not None:
                return info
        return None

    def _is_live(self, proclet_id: str) -> bool:
        state = self.health.state(proclet_id)
        return state in (HealthState.HEALTHY, HealthState.STARTING, HealthState.SUSPECT)

    def _healthy_addresses(self, group: GroupState) -> list[str]:
        return [
            p.address
            for p in sorted(group.proclets.values(), key=lambda p: p.replica_index)
            if self._is_live(p.proclet_id)
        ]

    def _is_routed(self, component: str) -> bool:
        reg = self.build.by_name(component)
        return any(m.routing_key is not None for m in reg.spec.methods)

    def _rebuild_assignment(self, component: str, addresses: list[str]) -> Assignment:
        generation = self._generations.get(component, 0) + 1
        self._generations[component] = generation
        assignment = build_assignment(component, addresses, generation)
        self._assignments[component] = assignment
        return assignment

    def _bump_group_routing(self, group: GroupState) -> None:
        addresses = self._healthy_addresses(group)
        push = getattr(self.launcher, "push_routing", None)
        for component in group.components:
            if self._is_routed(component) and addresses:
                assignment = self._rebuild_assignment(component, addresses)
                if push is None:
                    continue
                # Proactively push the fresh assignment to the group's own
                # proclets: their per-key ownership checks (repro.state)
                # must see ring changes promptly, not on the next cache
                # miss.  Fire-and-forget — this runs under the manager
                # lock, and the pushes only touch envelopes/proclets.
                info = {
                    "component": component,
                    "replicas": addresses,
                    "assignment": assignment.to_wire(),
                }
                for p in group.proclets.values():
                    if self._is_live(p.proclet_id):
                        asyncio.ensure_future(
                            self._push_routing(push, p.proclet_id, component, info)
                        )

    @staticmethod
    async def _push_routing(
        push: Any, proclet_id: str, component: str, info: dict[str, Any]
    ) -> None:
        try:
            await push(proclet_id, component, info)
        except Exception:
            log.debug(
                "routing push of %s to %s failed", component, proclet_id, exc_info=True
            )

    async def _ensure_replicas(self, group: GroupState, minimum: int) -> None:
        live = [p for p in group.proclets.values() if self._is_live(p.proclet_id)]
        deficit = minimum - len(live) - group.launching
        launches = []
        for _ in range(max(0, deficit)):
            group.launching += 1
            index = group.launch_seq
            group.launch_seq += 1
            launches.append(self.launcher.start_replica(group.group_id, index))
        if launches:
            group.registered_event.clear()
            await asyncio.gather(*launches)
            # Wait for at least one registration so callers of
            # StartComponent see a routable replica.
            if not self._healthy_addresses(group):
                try:
                    await asyncio.wait_for(group.registered_event.wait(), timeout=30.0)
                except asyncio.TimeoutError:
                    raise PlacementError(
                        f"no replica of group {group.group_id} registered in time"
                    ) from None

    async def _retire_replica(
        self, proclet_id: str, *, components: tuple[str, ...] = ()
    ) -> None:
        """Planned removal: drain in-flight work, then stop.

        Routing must already exclude the replica (callers steer new
        traffic elsewhere while it finishes what it has).
        ``drain_replica`` is part of the :class:`ReplicaLauncher` protocol;
        the manager still tolerates legacy launchers without it (attribute
        absent or None) and hard-stops, as it does when drain is disabled
        (``drain_deadline_s = 0``).  ``components`` labels the drain-event
        counters the telemetry pipeline turns into per-component series.
        """
        for comp in components:
            self._own_metrics.counter("replica_drains").inc(component=comp)
        if components:
            self._merged_metrics = None
        deadline_s = self.resolved.app.drain_deadline_s
        drain = getattr(self.launcher, "drain_replica", None)
        if drain is not None and deadline_s > 0:
            started = self.clock()
            response: Optional[dict[str, Any]] = None
            try:
                response = await drain(proclet_id, deadline_s)
            except Exception:
                log.exception("drain of %s failed; hard-stopping", proclet_id)
            # Recorded manager-side: the proclet's own histogram dies with
            # it before its next metrics export.
            self._own_metrics.histogram("replica_drain_s").observe(
                self.clock() - started
            )
            self._merged_metrics = None
            if isinstance(response, dict):
                # The retiring proclet flushed and exported its owned
                # state shards; re-home them before it exits so the new
                # owners replay eagerly (bounded rebalance stall) instead
                # of on first request.
                await self._distribute_handover(
                    proclet_id, response.get("handover") or []
                )
        await self.launcher.stop_replica(proclet_id)

    async def _distribute_handover(
        self, retiring_id: str, manifests: list[dict[str, Any]]
    ) -> None:
        """Push a retiree's flushed shard manifests to its surviving peers.

        Every live proclet of the shard's group gets the manifest: a
        shard's keys can span several ring owners (vnode arcs are dense),
        so there is no single successor.  Replay is max-merge by per-key
        version — adopting a shard you only partially own is harmless.
        Best-effort by design: a survivor that misses the push recovers
        lazily from the shared WAL directory on first touch.
        """
        if not manifests:
            return
        push = getattr(self.launcher, "push_state", None)
        if push is None:
            return
        by_group: dict[int, list[dict[str, Any]]] = {}
        for manifest in manifests:
            gid = self._component_group.get(manifest.get("component"))
            if gid is not None:
                by_group.setdefault(gid, []).append(manifest)
        started = self.clock()
        replayed = 0
        for gid, shards in by_group.items():
            group = self._groups.get(gid)
            if group is None:
                continue
            for info in list(group.proclets.values()):
                if info.proclet_id == retiring_id or not self._is_live(info.proclet_id):
                    continue
                try:
                    replayed += int(await push(info.proclet_id, shards) or 0)
                except Exception:
                    log.exception(
                        "state handover push to %s failed", info.proclet_id
                    )
        self._own_metrics.counter("state_handover_shards").inc(len(manifests))
        self._own_metrics.counter("state_handover_replayed").inc(replayed)
        self._own_metrics.histogram("state_handover_s").observe(self.clock() - started)
        self._merged_metrics = None

    async def _shrink_group(self, group: GroupState, desired: int) -> None:
        live = sorted(
            (p for p in group.proclets.values() if self._is_live(p.proclet_id)),
            key=lambda p: p.replica_index,
        )
        to_stop = live[desired:]
        # Drop the retirees from routing *first*: new picks steer to the
        # survivors while the retirees drain their in-flight requests.
        for info in to_stop:
            group.proclets.pop(info.proclet_id, None)
            self.health.remove(info.proclet_id)
        if to_stop:
            self._bump_group_routing(group)
        for info in to_stop:
            await self._retire_replica(info.proclet_id, components=group.components)
