"""Deployment status rendering — Figure 3's "Web UI / Debugging Tools".

The manager aggregates health, load, metrics, logs, the call graph, and
cross-proclet traces; this module renders them as one human-readable
report (the terminal analogue of Service Weaver's dashboard).  Everything
shown here is about a *single logical application*, however many processes
it happens to occupy — the C3 ("hard to manage") fix made visible.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.observability.metrics import HistogramValue
from repro.observability.tracing import Span
from repro.runtime.manager import Manager


def _short(name: str) -> str:
    return name.rsplit(".", 1)[-1]


def render_status(manager: Manager, *, max_traces: int = 3) -> str:
    """The full deployment report as a string."""
    sections = [
        render_header(manager),
        render_signals(manager),
        render_timeseries(manager),
        render_replicas(manager),
        render_workers(manager),
        render_state(manager),
        render_breakers(manager),
        render_remediation(manager),
        render_call_graph(manager),
        render_latencies(manager),
        render_traces(manager, max_traces=max_traces),
        render_recent_logs(manager),
    ]
    return "\n\n".join(s for s in sections if s)


def render_header(manager: Manager) -> str:
    groups = manager.group_states()
    return (
        f"deployment {manager.resolved.app.name!r} "
        f"version {manager.build.version}\n"
        f"components: {len(manager.build)}  groups: {len(groups)}  "
        f"replicas: {manager.total_replicas()}  "
        f"autoscaling: {'on' if manager.autoscale_enabled else 'off'}"
    )


def render_signals(manager: Manager) -> str:
    """Anomaly / SLO burn-rate verdicts from the live signal board."""
    board = getattr(manager, "signals", None)
    if board is None:
        return ""
    signals = board.signals()
    if not signals:
        return ""
    firing = [s for s in signals if s.firing]
    lines = [f"signals ({len(firing)} firing / {len(signals)} watched):"]
    shown = firing + [s for s in signals if not s.firing and s.kind == "slo"]
    for s in shown[:12]:
        mark = "FIRING" if s.firing else "ok"
        scope = _short(s.scope) if s.scope != "_total" else "total"
        lines.append(f"  [{mark:<6s}] {s.kind}:{s.name:<14s} {scope:<14s} {s.detail}")
    for event in list(board.events)[-3:]:
        verb = "fired" if event["firing"] else "resolved"
        lines.append(f"  event: {event['key']} {verb}")
    return "\n".join(lines)


def render_timeseries(manager: Manager) -> str:
    """Deployment-wide trend sparklines from the per-second ring buffers."""
    store = getattr(manager, "timeseries", None)
    if store is None:
        return ""
    from repro.observability.timeseries import sparkline

    lines = []
    for name, unit in (
        ("rps", "req/s"),
        ("error_rate", ""),
        ("p50_ms", "ms"),
        ("p99_ms", "ms"),
    ):
        series = store.series(name, "_total")
        latest = series.latest()
        if latest is None:
            continue
        spark = sparkline(series.values(last=30))
        lines.append(f"  {name:<12s} {latest.value:>10.2f} {unit:<6s} {spark}")
    if not lines:
        return ""
    return "\n".join(["telemetry (last 30s, 1s resolution):"] + lines)


def render_replicas(manager: Manager) -> str:
    lines = ["replicas:"]
    for group in manager.group_states().values():
        members = ", ".join(_short(c) for c in group.components)
        lines.append(f"  group {group.group_id} [{members}]")
        for info in sorted(group.proclets.values(), key=lambda p: p.replica_index):
            state = manager.health.state(info.proclet_id)
            state_name = state.value if state else "?"
            lines.append(
                f"    {info.proclet_id:<26s} {info.address:<28s} "
                f"{state_name:<8s} load={info.load:.2f}"
            )
    return "\n".join(lines)


def render_workers(manager: Manager) -> str:
    """Multi-core data plane view: per-worker-loop load on each replica.

    Populated only when a proclet runs with ``workers > 1`` (single-loop
    replicas export no worker gauges).  Surfaces the imbalance signals
    that matter: connection spread, per-loop message rate, the fallback
    acceptor's handoff queue, and event-loop lag (the saturation signal —
    a hot loop runs its callbacks late long before it drops anything).
    """
    rows: dict[tuple[str, str], dict[str, float]] = {}
    for (name, labels), cell in manager.metrics.cells().items():
        if not name.startswith("worker_"):
            continue
        labelmap = dict(labels)
        key = (labelmap.get("proclet", "?"), labelmap.get("worker", "?"))
        rows.setdefault(key, {})[name] = cell.value
    if not rows:
        return ""
    lines = ["data-plane workers (per event loop):"]
    for (proclet, worker) in sorted(rows):
        stats = rows[(proclet, worker)]
        lines.append(
            f"  {proclet:<26s} w{worker:<3s} "
            f"conns={stats.get('worker_connections', 0):.0f} "
            f"rate={stats.get('worker_msgs_per_s', 0):.1f}/s "
            f"handoff_q={stats.get('worker_queue_depth', 0):.0f} "
            f"loop_lag={stats.get('worker_loop_lag_ms', 0):.2f}ms"
        )
    return "\n".join(lines)


def render_state(manager: Manager) -> str:
    """Durable-state view: shard map, write volume, handover activity.

    Per-proclet numbers come from the metrics each proclet exports on
    heartbeat; handover counters are recorded manager-side at retire time
    (the retiring proclet's own registry dies with it).
    """
    writes: dict[str, float] = {}
    wrong_owner: dict[str, float] = {}
    replayed = 0.0
    replay_hist: list[Any] = []
    handover_shards = 0.0
    handover_replayed = 0.0
    handover_hist: list[Any] = []
    for (name, labels), cell in manager.metrics.cells().items():
        labelmap = dict(labels)
        if name == "state_writes":
            comp = labelmap.get("component", "?")
            writes[comp] = writes.get(comp, 0.0) + cell.value
        elif name == "state_wrong_owner":
            comp = labelmap.get("component", "?")
            wrong_owner[comp] = wrong_owner.get(comp, 0.0) + cell.value
        elif name == "state_replayed_records":
            replayed += cell.value
        elif name == "state_replay_s" and isinstance(cell, HistogramValue):
            replay_hist.append(cell)
        elif name == "state_handover_shards":
            handover_shards += cell.value
        elif name == "state_handover_replayed":
            handover_replayed += cell.value
        elif name == "state_handover_s" and isinstance(cell, HistogramValue):
            handover_hist.append(cell)
    if not writes and not handover_shards and not replayed:
        return ""
    lines = ["durable state (shards / handover):"]
    assignments = getattr(manager, "_assignments", {})
    for comp in sorted(set(writes) | set(wrong_owner)):
        assignment = assignments.get(comp)
        gen = assignment.generation if assignment else 0
        owners = len(set(assignment.owners)) if assignment else 0
        lines.append(
            f"  {_short(comp):<18s} writes={writes.get(comp, 0):.0f} "
            f"wrong_owner_rejects={wrong_owner.get(comp, 0):.0f} "
            f"ring_gen={gen} owners={owners}"
        )
    attach_count = sum(h.count for h in replay_hist)
    if replayed or attach_count:
        mean_ms = (
            sum(h.total for h in replay_hist) / attach_count * 1000
            if attach_count
            else 0.0
        )
        lines.append(
            f"  replay: {replayed:.0f} WAL records over {attach_count} "
            f"attaches, mean {mean_ms:.1f}ms"
        )
    if handover_shards:
        count = sum(h.count for h in handover_hist)
        total = sum(h.total for h in handover_hist)
        mean_ms = total / count * 1000 if count else 0.0
        lines.append(
            f"  handover: {handover_shards:.0f} shards re-homed, "
            f"{handover_replayed:.0f} records replayed eagerly, "
            f"mean {mean_ms:.1f}ms"
        )
    return "\n".join(lines)


def render_breakers(manager: Manager) -> str:
    """Failure-domain view: breaker churn, ejections, drain durations.

    Built from the metrics every proclet exports on heartbeat, so it shows
    the whole deployment's client-side failure handling, not one process's.
    """
    transitions: dict[str, dict[str, float]] = {}
    skips: dict[str, float] = {}
    drains: list[Any] = []
    open_now: dict[str, float] = {}
    for (name, labels), cell in manager.metrics.cells().items():
        labelmap = dict(labels)
        if name == "breaker_transitions":
            comp = labelmap.get("component", "?")
            transitions.setdefault(comp, {})[labelmap.get("to", "?")] = cell.value
        elif name == "breaker_skipped_picks":
            skips[labelmap.get("component", "?")] = cell.value
        elif name == "breaker_open_replicas":
            open_now[labelmap.get("component", "?")] = cell.value
        elif name == "replica_drain_s" and isinstance(cell, HistogramValue):
            drains.append(cell)
    if not transitions and not skips and not drains:
        return ""
    lines = ["failure domains (circuit breakers / drain):"]
    for comp in sorted(set(transitions) | set(skips) | set(open_now)):
        per_state = transitions.get(comp, {})
        lines.append(
            f"  {_short(comp):<18s} open_now={open_now.get(comp, 0):.0f} "
            f"tripped={per_state.get('open', 0):.0f} "
            f"recovered={per_state.get('closed', 0):.0f} "
            f"skipped_picks={skips.get(comp, 0):.0f}"
        )
    if drains:
        count = sum(d.count for d in drains)
        total = sum(d.total for d in drains)
        lines.append(
            f"  drains: {count} replicas drained, "
            f"mean {total / count * 1000:.0f}ms" if count else "  drains: 0"
        )
    return "\n".join(lines)


def render_remediation(manager: Manager, *, max_entries: int = 8) -> str:
    """Closed-loop controller view: mode, budget, and the action journal.

    Every decision the controller made is in the journal — including the
    ones guardrails suppressed — so an operator can audit exactly why a
    replica restarted (or why it pointedly did not).
    """
    controller = getattr(manager, "remediation", None)
    if controller is None:
        return ""
    wire = controller.to_wire()
    if wire["mode"] == "off" and not wire["journal"]:
        return ""
    budget = wire["budget"]
    counts = wire["counts"]
    lines = [
        f"remediation (mode={wire['mode']}): "
        f"fired={counts.get('fired', 0)} observed={counts.get('observed', 0)} "
        f"suppressed={counts.get('suppressed', 0)}  "
        f"budget={budget['available']}/{budget['max_actions_per_min']} per min, "
        f"cooldown={budget['cooldown_s']:.0f}s"
    ]
    for entry in wire["journal"][-max_entries:]:
        lines.append(
            f"  [{entry['verdict']:<20s}] {entry['action']:<16s} "
            f"{_short(entry['target']):<22s} {entry['reason']}"
        )
    return "\n".join(lines)


def render_call_graph(manager: Manager, top: int = 8) -> str:
    edges = manager.call_graph.pair_traffic()
    if not edges:
        return ""
    lines = ["call graph (top pairs by calls):"]
    ranked = sorted(edges.items(), key=lambda kv: kv[1].calls, reverse=True)
    for (caller, callee), stats in ranked[:top]:
        kind = "local" if stats.remote_calls == 0 else "rpc"
        lines.append(
            f"  {_short(caller):<18s} -> {_short(callee):<18s} "
            f"{stats.calls:>7d} calls  {kind:<5s} "
            f"avg={stats.avg_latency_s * 1000:.2f}ms bytes={stats.avg_bytes:.0f}"
        )
    path = manager.call_graph.critical_path()
    if path:
        lines.append("  critical path: " + " -> ".join(_short(c) for c in path))
    return "\n".join(lines)


def render_latencies(manager: Manager, top: int = 8) -> str:
    cells = [
        (dict(labels), cell)
        for (name, labels), cell in manager.metrics.cells().items()
        if name == "component_method_latency_s" and isinstance(cell, HistogramValue)
    ]
    if not cells:
        return ""
    lines = ["server-side method latency:"]
    cells.sort(key=lambda item: item[1].count, reverse=True)
    for labels, cell in cells[:top]:
        lines.append(
            f"  {_short(labels.get('component', '?')):<18s}"
            f".{labels.get('method', '?'):<22s} "
            f"n={cell.count:<7d} p50={cell.quantile(0.5) * 1000:7.2f}ms "
            f"p99={cell.quantile(0.99) * 1000:7.2f}ms"
        )
    return "\n".join(lines)


def render_traces(manager: Manager, *, max_traces: int = 3) -> str:
    traces = manager.tracer.traces()
    if not traces:
        return ""
    # Deepest traces first: the interesting ones cross many components.
    ranked = sorted(traces.items(), key=lambda kv: len(kv[1]), reverse=True)
    lines = [f"traces ({len(traces)} collected; showing {min(max_traces, len(ranked))}):"]
    stats = getattr(manager.tracer, "stats", None)
    if stats is not None:
        s = stats()
        lines[0] = (
            f"traces ({s['kept']} kept + {s['pending']} pending; "
            f"sampled out {s['sampled_out_traces']}, evicted {s['evicted_traces']}; "
            f"showing {min(max_traces, len(ranked))}):"
        )
    for trace_id, spans in ranked[:max_traces]:
        lines.append(f"  trace {trace_id & 0xFFFFFFFF:08x} ({len(spans)} spans):")
        for depth, span in manager.tracer.trace_tree(trace_id):
            marker = "!" if span.status == "error" else " "
            lines.append(
                f"   {marker}{'  ' * depth}{span.name:<40s} "
                f"{span.duration_s * 1000:7.2f}ms"
            )
    return "\n".join(lines)


def render_trace(manager: Manager, trace_id: int) -> str:
    """One trace in full: the cross-proclet call tree + its critical path."""
    tree = manager.tracer.trace_tree(trace_id)
    if not tree:
        return f"trace {trace_id:x}: not found (sampled out, evicted, or never seen)"
    lines = [f"trace {trace_id:x} ({len(tree)} spans):"]
    for depth, span in tree:
        marker = "!" if span.status == "error" else " "
        lines.append(
            f" {marker}{'  ' * depth}{span.name:<44s} {span.duration_s * 1000:8.2f}ms"
        )
    critical = getattr(manager.tracer, "critical_path", None)
    if critical is not None:
        path = critical(trace_id)
        if path:
            total = path[0][0].duration_s
            lines.append("critical path:")
            for span, exclusive_s in path:
                share = exclusive_s / total * 100 if total > 0 else 0.0
                lines.append(
                    f"   {span.name:<44s} self={exclusive_s * 1000:8.2f}ms "
                    f"({share:4.1f}% of trace)"
                )
    return "\n".join(lines)


def latency_exemplars(manager: Manager) -> list[dict[str, Any]]:
    """(metric, component, value, trace_id) for every histogram exemplar.

    The pivot from "this bucket spiked" to "here is a trace that landed in
    it" — each entry's trace_id feeds ``repro trace <id>``.
    """
    out: list[dict[str, Any]] = []
    for (name, labels), cell in manager.metrics.cells().items():
        exemplars = getattr(cell, "exemplars", None)
        if not exemplars:
            continue
        labelmap = dict(labels)
        for bucket_index, (value, trace_id) in sorted(exemplars.items()):
            out.append(
                {
                    "metric": name,
                    "component": labelmap.get("component", ""),
                    "method": labelmap.get("method", ""),
                    "bucket": bucket_index,
                    "value_ms": round(value * 1000, 3),
                    "trace_id": trace_id,
                }
            )
    return out


def status_wire(manager: Manager) -> dict[str, Any]:
    """The deployment status as one machine-readable JSON-able dict.

    Served by the dashboard at ``/status.json`` and printed by
    ``repro status --json`` — the contract remediation tooling consumes.
    """
    groups = []
    for group in manager.group_states().values():
        groups.append(
            {
                "group_id": group.group_id,
                "components": list(group.components),
                "target_replicas": group.target_replicas,
                "replicas": [
                    {
                        "proclet_id": info.proclet_id,
                        "address": info.address,
                        "load": round(info.load, 4),
                        "health": (
                            manager.health.state(info.proclet_id).value
                            if manager.health.state(info.proclet_id)
                            else "?"
                        ),
                    }
                    for info in group.proclets.values()
                ],
            }
        )
    traces = manager.tracer.traces()
    ranked = sorted(traces.items(), key=lambda kv: len(kv[1]), reverse=True)
    trace_index = [
        {
            "trace_id": tid,
            "spans": len(spans),
            "root": next(
                (s.name for s in spans if s.parent_id is None), spans[0].name
            ),
            "duration_ms": round(
                max((s.end_s for s in spans), default=0.0)
                - min((s.start_s for s in spans), default=0.0),
                6,
            )
            * 1000,
            "error": any(s.status == "error" for s in spans),
        }
        for tid, spans in ranked[:50]
    ]
    out: dict[str, Any] = {
        "app": manager.resolved.app.name,
        "version": manager.build.version,
        "components": len(manager.build),
        "replicas": manager.total_replicas(),
        "autoscaling": manager.autoscale_enabled,
        "groups": groups,
        "exemplars": latency_exemplars(manager),
        "traces": trace_index,
    }
    board = getattr(manager, "signals", None)
    if board is not None:
        out["signals"] = board.to_wire()
    store = getattr(manager, "timeseries", None)
    if store is not None:
        out["series"] = store.to_wire()
    controller = getattr(manager, "remediation", None)
    if controller is not None:
        out["remediation"] = controller.to_wire()
    stats = getattr(manager.tracer, "stats", None)
    if stats is not None:
        out["trace_stats"] = stats()
    return out


def render_recent_logs(manager: Manager, count: int = 5) -> str:
    records = manager.logs.merged()
    if not records:
        return ""
    lines = [f"recent log records ({len(records)} aggregated):"]
    for record in records[-count:]:
        attrs = dict(record.attributes)
        lines.append(
            f"  [{record.level:<7s}] {_short(record.component)}/{record.replica_id}: "
            f"{record.message} {attrs if attrs else ''}".rstrip()
        )
    return "\n".join(lines)
