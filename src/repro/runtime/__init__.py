"""The runtime: control plane, placement, routing, scaling, rollouts.

Layout mirrors Figure 3 of the paper: proclets (in-binary daemons) talk to
envelopes over pipes; envelopes relay to the global manager; the manager
decides placement, replication, routing, scaling, and rollouts, and
aggregates telemetry.  Deployers (single/multi/simcloud) bind all of it to
an environment.
"""

from repro.runtime.advisor import RoutingAdvisor, RoutingSuggestion
from repro.runtime.autoscaler import Autoscaler, ScalingDecision, steady_state_replicas
from repro.runtime.envelope import InProcessEnvelope, RelayAPI, SubprocessEnvelope
from repro.runtime.health import HealthState, HealthTracker
from repro.runtime.manager import Manager, ProcletInfo, ReplicaLauncher
from repro.runtime.placement import (
    GroupPlacement,
    PlacementPlan,
    plan_from_config,
    recommend_groups,
)
from repro.runtime.proclet import PipeRuntimeAPI, Proclet, RoutingResolver, RuntimeAPI
from repro.runtime.rollout import (
    BlueGreenRollout,
    PinnedRequest,
    RollingUpdateModel,
    RolloutReport,
    run_rollout,
)
from repro.runtime.routing import (
    Assignment,
    LoadBalancer,
    RoutingTable,
    build_assignment,
    key_hash,
    moved_fraction,
)
from repro.runtime.stateful import (
    CompatibilityReport,
    StateCompatibilityChecker,
    StateType,
    gate_rollout,
)
from repro.runtime.status import render_status

__all__ = [
    "RoutingAdvisor",
    "RoutingSuggestion",
    "BlueGreenRollout",
    "PinnedRequest",
    "RollingUpdateModel",
    "RolloutReport",
    "run_rollout",
    "CompatibilityReport",
    "StateCompatibilityChecker",
    "StateType",
    "gate_rollout",
    "render_status",
    "Autoscaler",
    "ScalingDecision",
    "steady_state_replicas",
    "InProcessEnvelope",
    "RelayAPI",
    "SubprocessEnvelope",
    "HealthState",
    "HealthTracker",
    "Manager",
    "ProcletInfo",
    "ReplicaLauncher",
    "GroupPlacement",
    "PlacementPlan",
    "plan_from_config",
    "recommend_groups",
    "PipeRuntimeAPI",
    "Proclet",
    "RoutingResolver",
    "RuntimeAPI",
    "Assignment",
    "LoadBalancer",
    "RoutingTable",
    "build_assignment",
    "key_hash",
    "moved_fraction",
]
