"""Simulated-cloud deployer: the GKE stand-in (see DESIGN.md).

Unlike the single/multi deployers, this one does not run live stubs — a
Python process cannot serve the paper's 10 000 QPS for real.  Instead it
*records* the application's behaviour (call trees, CPU, bytes) by running
it once for real, then deploys the recording onto a simulated cluster with
measured per-RPC costs, pods, and an HPA.  The deployment surface mirrors
the others where it can: placement comes from the same
:class:`~repro.core.config.AppConfig` colocate groups.

This module is a thin, config-driven veneer over
:mod:`repro.sim.experiment`; benchmarks that want full control use that
module directly.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import AppConfig, AutoscaleConfig
from repro.core.registry import Registry, global_registry
from repro.sim.costmodel import BASELINE_STACK, WEAVER_STACK, StackCosts
from repro.sim.experiment import DeploymentSpec, simulate
from repro.sim.workload import SimReport, WorkloadMix


async def deploy_simcloud(
    mix: WorkloadMix,
    config: Optional[AppConfig] = None,
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
    stack: Optional[StackCosts] = None,
    qps: float = 1000.0,
    duration_s: float = 12.0,
    warmup_s: float = 3.0,
    seed: int = 0,
) -> SimReport:
    """Simulate one deployment of the given recorded workload.

    Placement follows ``config.colocate`` (singletons for unlisted
    components, like every other deployer); the stack defaults to the
    paper's prototype (compact + custom TCP).
    """
    config = config or AppConfig()
    reg = registry or global_registry()
    build = reg.freeze(components=components)
    resolved = config.resolve(build.names())
    placement = [tuple(group) for group in resolved.groups]
    spec = DeploymentSpec(
        label=(stack or WEAVER_STACK).name,
        costs=stack or WEAVER_STACK,
        placement=placement,
    )
    return simulate(
        spec,
        mix,
        qps=qps,
        duration_s=duration_s,
        warmup_s=warmup_s,
        autoscale=config.autoscale
        if config.autoscale != AutoscaleConfig()
        else None,
        seed=seed,
    )


__all__ = ["deploy_simcloud", "BASELINE_STACK", "WEAVER_STACK"]
