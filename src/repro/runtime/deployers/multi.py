"""Multiprocess deployer: co-location groups in separate OS processes.

    "a multiprocess runtime may run every proclet in a subprocess" (§4.3)

The driver process (the one calling :func:`deploy_multiprocess`) runs the
global manager, one envelope per proclet, and a *driver proclet* that hosts
nothing but lets ``app.get(...)`` hand out remote stubs.  Each co-location
group from the configuration becomes one proclet (replicated per its
replica count); proclets talk to each other directly over the data plane.

Two modes:

* ``mode="inproc"`` — proclets share the driver's event loop (see
  :class:`~repro.runtime.envelope.InProcessEnvelope`).  The process
  boundary collapses but sockets, registration, routing, and versioning
  are all real.  Fast enough for unit tests.
* ``mode="subprocess"`` — proclets are real child processes running
  :mod:`repro.runtime.procmain`.  This is the paper's multiprocess
  deployment on a laptop.
"""

from __future__ import annotations

import asyncio
import logging
import os
import shutil
import tempfile
from dataclasses import replace
from typing import Any, Optional, TypeVar

from repro.core.app import Application
from repro.core.call_graph import ROOT
from repro.core.component import Component
from repro.core.config import AppConfig
from repro.core.errors import ConfigError, PlacementError
from repro.core.registry import FrozenRegistry, Registry, global_registry
from repro.runtime.envelope import BaseEnvelope, InProcessEnvelope, SubprocessEnvelope
from repro.runtime.manager import Manager
from repro.runtime.placement import PlacementPlan
from repro.runtime.proclet import Proclet

log = logging.getLogger("repro.runtime.deploy")

T = TypeVar("T", bound=Component)


class DriverRuntimeAPI:
    """RuntimeAPI for the driver proclet: a client, not a managed replica."""

    def __init__(self, manager: Manager) -> None:
        self._manager = manager

    async def register_replica(self, proclet_id: str, address: str, group_id: int) -> None:
        return None  # the driver hosts nothing and is not load-balanced to

    async def components_to_host(self, proclet_id: str) -> list[str]:
        return []

    async def start_component(self, component: str) -> None:
        await self._manager.start_component(component)

    async def routing_info(self, component: str) -> dict[str, Any]:
        return await self._manager.routing_info(component)

    async def heartbeat(self, proclet_id: str, load: float) -> None:
        return None

    async def export_metrics(self, proclet_id: str, snapshot: dict[str, Any]) -> None:
        await self._manager.export_metrics(proclet_id, snapshot)

    async def export_logs(self, proclet_id: str, records: list[dict[str, Any]]) -> None:
        await self._manager.export_logs(proclet_id, records)

    async def export_call_graph(self, proclet_id: str, edges: list[dict[str, Any]]) -> None:
        await self._manager.export_call_graph(proclet_id, edges)

    async def export_traces(self, proclet_id: str, spans: list[dict[str, Any]]) -> None:
        await self._manager.export_traces(proclet_id, spans)

    async def export_spans(self, proclet_id: str, spans: list[Any]) -> None:
        self._manager.ingest_spans(spans)


class MultiProcessApp(Application):
    """A running multiprocess deployment."""

    def __init__(
        self,
        build: FrozenRegistry,
        config: AppConfig,
        *,
        mode: str = "inproc",
        plan: Optional[PlacementPlan] = None,
        autoscale_enabled: bool = False,
    ) -> None:
        # Durable state needs a root directory shared by every replica of
        # the deployment (handover transfers shard *references*, and crash
        # recovery replays from it).  Provision a per-deployment temp dir
        # when the config doesn't name one, and own its cleanup.
        self._owns_state_dir = config.state_dir is None
        if self._owns_state_dir:
            config = replace(
                config, state_dir=tempfile.mkdtemp(prefix="repro-state-")
            )
        super().__init__(build, config)
        if mode not in ("inproc", "subprocess"):
            raise ConfigError(f"unknown multiprocess mode {mode!r}")
        self.mode = mode
        self.resolved = config.resolve(build.names())
        self.manager = Manager(
            build,
            self.resolved,
            launcher=self,
            plan=plan,
            autoscale_enabled=autoscale_enabled,
        )
        self._envelopes: dict[str, BaseEnvelope] = {}
        self._replica_seq = 0
        self._control_dir: Optional[str] = None
        self._modules: list[str] = sorted({r.iface.__module__ for r in build})
        self._driver = Proclet(
            "driver",
            build,
            config,
            DriverRuntimeAPI(self.manager),
            group_id=-1,
            # The driver is not health-checked (its heartbeat is a no-op),
            # but the same tick exports its client-side telemetry — breaker
            # trips, call latencies — so the status page sees the failure
            # handling done by driver-originated calls too.
            heartbeat_interval_s=1.0,
            call_graph=self.call_graph,
        )
        self._loops: list[asyncio.Task] = []
        self._started = False
        self._dashboard = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self, *, eager: bool = True) -> "MultiProcessApp":
        if self._started:
            return self
        self._started = True
        if self.mode == "subprocess":
            self._control_dir = tempfile.mkdtemp(prefix="repro-ctl-")
        await self._driver.start()
        if eager:
            for group in self.manager.plan.groups:
                state = self.manager.group_states()[group.group_id]
                await self.manager._ensure_replicas(state, minimum=group.replicas)
        self._loops.append(asyncio.ensure_future(self._sweep_loop()))
        self._loops.append(asyncio.ensure_future(self._telemetry_loop()))
        if self.manager.autoscale_enabled:
            self._loops.append(asyncio.ensure_future(self._autoscale_loop()))
        return self

    async def serve_dashboard(self, port: int = 0) -> str:
        """Start the live dashboard HTTP server; returns its base URL."""
        if self._dashboard is None:
            from repro.observability.dashboard import DashboardServer

            self._dashboard = DashboardServer(self.manager)
            await self._dashboard.start(port=port)
        return self._dashboard.url

    async def shutdown(self) -> None:
        for task in self._loops:
            task.cancel()
        self._loops.clear()
        if self._dashboard is not None:
            await self._dashboard.stop()
            self._dashboard = None
        for envelope in list(self._envelopes.values()):
            await envelope.stop()
        self._envelopes.clear()
        await self._driver.stop()
        if self._control_dir is not None:
            try:
                for name in os.listdir(self._control_dir):
                    os.unlink(os.path.join(self._control_dir, name))
                os.rmdir(self._control_dir)
            except OSError:
                pass
        if self._owns_state_dir and self.config.state_dir is not None:
            shutil.rmtree(self.config.state_dir, ignore_errors=True)

    # -- the ReplicaLauncher the manager drives -------------------------------

    async def start_replica(self, group_id: int, replica_index: int) -> None:
        self._replica_seq += 1
        proclet_id = f"{self.config.name}-g{group_id}-r{self._replica_seq}"
        if self.mode == "inproc":
            envelope: BaseEnvelope = InProcessEnvelope(
                proclet_id,
                group_id,
                self.manager,
                self.build,
                self.config,
                replica_index=replica_index,
            )
        else:
            assert self._control_dir is not None
            spec = {
                "proclet_id": proclet_id,
                "group_id": group_id,
                "replica_index": replica_index,
                "modules": self._modules,
                "components": self.build.names(),
                "version": self.build.version,
                "config": _config_to_dict(self.config),
            }
            envelope = SubprocessEnvelope(
                proclet_id,
                group_id,
                self.manager,
                spec=spec,
                control_dir=self._control_dir,
            )
        self._envelopes[proclet_id] = envelope
        await envelope.start()

    async def stop_replica(self, proclet_id: str) -> None:
        envelope = self._envelopes.pop(proclet_id, None)
        if envelope is not None:
            await envelope.stop()

    async def drain_replica(
        self, proclet_id: str, deadline_s: float
    ) -> Optional[dict[str, Any]]:
        """Let the proclet finish in-flight RPCs before it is stopped.

        Returns the proclet's drain response (drain duration + exported
        state-shard manifests) for the manager's handover distribution.
        """
        envelope = self._envelopes.get(proclet_id)
        if envelope is None:
            return None
        return await envelope.drain(deadline_s)

    async def push_routing(
        self, proclet_id: str, component: str, info: dict[str, Any]
    ) -> None:
        envelope = self._envelopes.get(proclet_id)
        if envelope is not None:
            await envelope.push_routing(component, info)

    async def push_state(
        self, proclet_id: str, shards: list[dict[str, Any]]
    ) -> int:
        envelope = self._envelopes.get(proclet_id)
        if envelope is None:
            return 0
        return await envelope.push_state(shards)

    async def update_hosting(self, proclet_id: str, components: list[str]) -> None:
        envelope = self._envelopes.get(proclet_id)
        if envelope is not None:
            await envelope.push_hosted(components)

    async def replace_placement(self, groups: list[tuple[str, ...]]) -> None:
        """Live re-placement of the running app (see Manager.apply_placement)."""
        await self.manager.apply_placement(groups)

    def kill_replica(self, proclet_id: str, *, silent: bool = False) -> None:
        """Abruptly kill one proclet (chaos-testing hook, §5.3).

        ``silent=True`` skips telling the manager: the failure is only
        discovered through missed heartbeats, modeling a real crash where
        nobody files a report — the window client-side breakers exist for.
        """
        envelope = self._envelopes.get(proclet_id)
        if envelope is None:
            raise PlacementError(f"no envelope for {proclet_id!r}")
        envelope.kill()
        if not silent:
            self.manager.health.mark_dead(proclet_id)

    # -- Application surface ----------------------------------------------------

    def get(self, iface: type[T]) -> T:
        return self._driver.get_for(iface, ROOT)

    @property
    def envelopes(self) -> dict[str, BaseEnvelope]:
        return dict(self._envelopes)

    @property
    def driver(self) -> Proclet:
        """The driver proclet (exposes its breakers/metrics to callers)."""
        return self._driver

    # -- control loops ---------------------------------------------------------

    async def _sweep_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(0.5)
                await self.manager.sweep()
        except asyncio.CancelledError:
            pass
        except Exception:
            log.exception("sweep loop failed")

    async def _autoscale_loop(self) -> None:
        try:
            while True:
                await asyncio.sleep(1.0)
                await self.manager.autoscale_tick()
        except asyncio.CancelledError:
            pass
        except Exception:
            log.exception("autoscale loop failed")

    async def _telemetry_loop(self) -> None:
        """The telemetry tick (1s default): heartbeat merges -> series ->
        signals -> the remediation controller, which must see this
        second's fresh verdicts before it plans actions."""
        interval = self.config.telemetry_tick_s
        try:
            while True:
                await asyncio.sleep(interval)
                self.manager.telemetry_tick()
                try:
                    await self.manager.remediation_tick()
                except Exception:
                    # A failed action round must not kill telemetry; the
                    # journal records per-action failures already.
                    log.exception("remediation tick failed")
        except asyncio.CancelledError:
            pass
        except Exception:
            log.exception("telemetry loop failed")


def _config_to_dict(config: AppConfig) -> dict[str, Any]:
    # Placement is the driver's concern (hosting sets are pushed over the
    # control plane), so colocate groups are deliberately not shipped.
    return {
        "name": config.name,
        "codec": config.codec,
        "transport": config.transport,
        "call_timeout_s": config.call_timeout_s,
        "max_retries": config.max_retries,
        "max_inflight": config.max_inflight,
        "max_queue_depth": config.max_queue_depth,
        "breakers_enabled": config.breakers_enabled,
        "breaker_failures": config.breaker_failures,
        "breaker_open_for_s": config.breaker_open_for_s,
        "drain_deadline_s": config.drain_deadline_s,
        "state_dir": config.state_dir,
        "state_shards": config.state_shards,
        "state_fsync": config.state_fsync,
        "state_snapshot_every": config.state_snapshot_every,
        "workers": config.workers,
        "uvloop": config.uvloop,
        "stream_threshold_bytes": config.stream_threshold_bytes,
        "stream_chunk_bytes": config.stream_chunk_bytes,
        "telemetry": config.telemetry,
        "trace_sample_rate": config.trace_sample_rate,
        "trace_max_traces": config.trace_max_traces,
        "slo_error_budget": config.slo_error_budget,
        "slo_latency_ms": config.slo_latency_ms,
        "slo_latency_budget": config.slo_latency_budget,
        "settings": config.settings,
    }


async def deploy_multiprocess(
    config: Optional[AppConfig] = None,
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
    mode: str = "inproc",
    plan: Optional[PlacementPlan] = None,
    autoscale: bool = False,
    eager: bool = True,
) -> MultiProcessApp:
    """Deploy each co-location group of the config in its own process.

    With ``eager=False`` groups start lazily on first use
    (``StartComponent``); with ``autoscale=True`` the manager runs the
    HPA loop over proclet load reports.
    """
    config = config or AppConfig()
    reg = registry or global_registry()
    build = reg.freeze(components=components)
    app = MultiProcessApp(
        build, config, mode=mode, plan=plan, autoscale_enabled=autoscale
    )
    return await app.start(eager=eager)
