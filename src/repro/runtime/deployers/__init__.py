"""Deployers: one per environment, all exposing the same Application surface.

* :mod:`repro.runtime.deployers.single` — everything in this process.
* :mod:`repro.runtime.deployers.multi` — one process per co-location group
  (in-process emulation or real subprocesses).
* :mod:`repro.runtime.deployers.simcloud` — a simulated multi-machine cloud
  (the GKE stand-in used by the paper-scale benchmarks).
"""

from repro.runtime.deployers.multi import MultiProcessApp, deploy_multiprocess
from repro.runtime.deployers.single import SingleProcessApp, deploy_single

__all__ = [
    "MultiProcessApp",
    "deploy_multiprocess",
    "SingleProcessApp",
    "deploy_single",
]
