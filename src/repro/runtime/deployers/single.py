"""Single-process deployer: every component co-located, all calls local.

This is the degenerate — and fastest — deployment: the logical monolith
runs as an actual monolith.  It is both the development default (the
paper's C3 fix: end-to-end tests are plain unit tests, §5.3) and the
fully-co-located end point of the evaluation (§6.1: "when we co-locate all
eleven components into a single OS process...").

Implementation-wise it is :class:`repro.core.app.SingleProcessApp`;
re-exported here so all deployers are importable from one place.
"""

from __future__ import annotations

from typing import Optional

from repro.core.app import SingleProcessApp, init
from repro.core.config import AppConfig
from repro.core.registry import Registry


async def deploy_single(
    config: Optional[AppConfig] = None,
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
) -> SingleProcessApp:
    """Deploy with every component in this process."""
    return await init(config, components=components, registry=registry)


__all__ = ["deploy_single", "SingleProcessApp"]
