"""Horizontal autoscaling, HPA-style (§6.1).

The paper's evaluation configures both deployments to "auto-scale the
number of container replicas in response to load" using Kubernetes
Horizontal Pod Autoscalers.  This module is a faithful HPA core:

    desired = ceil(current * observed_utilization / target_utilization)

with a tolerance band around 1.0 (no action for small ratios), an optional
scale-down stabilization window (use the *maximum* desired over the window,
so transient dips don't flap replicas away), and min/max clamps.

The same :class:`Autoscaler` drives both the real multiprocess runtime
(wall-clock time) and the simulator (simulated time): time is always passed
in, never read from a clock.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.config import AutoscaleConfig


@dataclass
class ScalingDecision:
    desired: int
    reason: str


class Autoscaler:
    """Per-component (or per-group) HPA control loop."""

    def __init__(self, config: AutoscaleConfig) -> None:
        self.config = config
        #: (time, desired) observations within the stabilization window.
        self._window: list[tuple[float, int]] = []
        #: Remediation floor: (replicas, expires_at).  While active,
        #: ``decide`` never proposes fewer replicas than this.
        self._floor: tuple[int, float] = (0, 0.0)

    def raise_floor(self, replicas: int, *, now: float, hold_s: float = 120.0) -> None:
        """The remediation seam: hold ``desired >= replicas`` for a while.

        The closed-loop controller scales a group up to absorb an incident;
        without a floor the HPA's next tick would see per-replica
        utilization drop and immediately shrink the capacity away.  The
        floor is time-bounded, not permanent — once the hold expires the
        HPA resumes full authority (clamped to ``max_replicas`` as always).
        """
        current, expires = self._floor
        self._floor = (
            max(current, min(replicas, self.config.max_replicas)),
            max(expires, now + hold_s),
        )

    def decide(
        self, *, now: float, current_replicas: int, utilization: float
    ) -> ScalingDecision:
        """One control-loop tick.

        ``utilization`` is the mean busy fraction per replica, normalized
        to one core (i.e. 0.65 means each replica burns 0.65 cores).
        """
        cfg = self.config
        current = max(1, current_replicas)
        ratio = utilization / cfg.target_utilization
        raw_desired = math.ceil(current * ratio) if ratio > 0 else cfg.min_replicas

        if abs(ratio - 1.0) <= cfg.scale_up_tolerance:
            raw_desired = current  # inside the tolerance band: hold

        floor, expires = self._floor
        if floor and now < expires:
            raw_desired = max(raw_desired, floor)
        elif floor:
            self._floor = (0, 0.0)

        raw_desired = min(cfg.max_replicas, max(cfg.min_replicas, raw_desired))

        # Scale-down stabilization: remember recent desires; only shrink to
        # the max desired seen within the window.
        self._window.append((now, raw_desired))
        cutoff = now - cfg.scale_down_stabilization_s
        self._window = [(t, d) for t, d in self._window if t >= cutoff]

        if raw_desired < current:
            stabilized = max(d for _, d in self._window)
            desired = min(current, max(raw_desired, stabilized))
            if desired == current:
                return ScalingDecision(current, "scale-down held by stabilization window")
            return ScalingDecision(desired, f"scale down (ratio={ratio:.2f})")
        if raw_desired > current:
            return ScalingDecision(raw_desired, f"scale up (ratio={ratio:.2f})")
        return ScalingDecision(current, "steady")


def steady_state_replicas(
    offered_cores: float, config: AutoscaleConfig
) -> int:
    """The replica count the HPA converges to for a constant load.

    With per-replica demand ``offered_cores / n`` the loop settles at the
    smallest n with utilization <= target, i.e. ``ceil(offered / target)``.
    Exposed for the simulator's fast-forward mode and for benchmark
    assertions.
    """
    if offered_cores <= 0:
        return config.min_replicas
    n = math.ceil(offered_cores / config.target_utilization)
    return min(config.max_replicas, max(config.min_replicas, n))
