"""Learning which methods benefit from affinity routing (§5.2).

    "The runtime could also learn which methods benefit the most from
    routing and route them automatically."

The :class:`RoutingAdvisor` watches method invocations and keeps bounded
per-argument statistics: how often values repeat, and over how many
distinct values traffic spreads.  A parameter makes a good routing key
when

* values **repeat** (affinity pays: the same key hits a warm replica) —
  measured as ``repeat_rate = 1 - distinct/calls``;
* values **spread** (the key space is shardable: routing on a near-
  constant funnels all traffic to one replica) — measured by requiring a
  minimum number of distinct values;
* only hashable, cheaply comparable argument types are considered
  (strings, ints — the things :func:`repro.runtime.routing.key_hash`
  handles well).

The advisor is wired into every proclet's local invoker, so a deployment
accumulates advice as it serves; ``suggestions()`` is what a human (or an
auto-router) reads.  Boutique's ``CartStore`` methods — annotated
``@routed(by="user_id")`` by hand — are exactly what it rediscovers, which
is the test.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Optional

#: Per-parameter cap on tracked distinct values; beyond it we only count.
MAX_TRACKED_VALUES = 4096


@dataclass
class ParamStats:
    calls: int = 0
    unhashable: bool = False
    #: Distinct observed values (bounded); overflow counts distinct only.
    values: set = field(default_factory=set)
    overflowed: bool = False

    def observe(self, value: Any) -> None:
        self.calls += 1
        if self.unhashable:
            return
        try:
            key = hash((type(value).__name__, value))
        except TypeError:
            self.unhashable = True
            self.values.clear()
            return
        if len(self.values) < MAX_TRACKED_VALUES:
            self.values.add(key)
        elif key not in self.values:
            self.overflowed = True

    @property
    def distinct(self) -> int:
        return len(self.values)

    @property
    def repeat_rate(self) -> float:
        if self.calls == 0 or self.unhashable:
            return 0.0
        if self.overflowed:
            return 0.0  # effectively unique values: no affinity to exploit
        return 1.0 - self.distinct / self.calls


@dataclass(frozen=True)
class RoutingSuggestion:
    component: str
    method: str
    param: str
    repeat_rate: float
    distinct_values: int
    calls: int

    def __str__(self) -> str:
        return (
            f"@routed(by={self.param!r}) suggested for "
            f"{self.component.rsplit('.', 1)[-1]}.{self.method} "
            f"(repeat rate {self.repeat_rate:.0%} over {self.calls} calls, "
            f"{self.distinct_values} distinct keys)"
        )


class RoutingAdvisor:
    """Accumulates argument statistics and emits routing suggestions."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stats: dict[tuple[str, str, str], ParamStats] = {}
        #: (component, method) pairs already routed (no advice needed).
        self._already_routed: set[tuple[str, str]] = set()

    def observe(
        self,
        component: str,
        method: str,
        arg_names: tuple[str, ...],
        args: tuple,
        *,
        already_routed: bool = False,
    ) -> None:
        if already_routed:
            with self._lock:
                self._already_routed.add((component, method))
            return
        with self._lock:
            for name, value in zip(arg_names, args):
                key = (component, method, name)
                stats = self._stats.get(key)
                if stats is None:
                    stats = ParamStats()
                    self._stats[key] = stats
                stats.observe(value)

    def suggestions(
        self,
        *,
        min_calls: int = 20,
        min_repeat_rate: float = 0.3,
        min_distinct: int = 3,
    ) -> list[RoutingSuggestion]:
        """Ranked advice: best routing-key candidate per method."""
        with self._lock:
            stats = dict(self._stats)
            routed = set(self._already_routed)
        best: dict[tuple[str, str], RoutingSuggestion] = {}
        for (component, method, param), s in stats.items():
            if (component, method) in routed:
                continue
            if s.calls < min_calls or s.unhashable or s.overflowed:
                continue
            if s.distinct < min_distinct or s.repeat_rate < min_repeat_rate:
                continue
            suggestion = RoutingSuggestion(
                component, method, param, s.repeat_rate, s.distinct, s.calls
            )
            incumbent = best.get((component, method))
            if incumbent is None or suggestion.repeat_rate > incumbent.repeat_rate:
                best[(component, method)] = suggestion
        return sorted(best.values(), key=lambda s: s.repeat_rate, reverse=True)

    def reset(self) -> None:
        with self._lock:
            self._stats.clear()
            self._already_routed.clear()
