"""Closed-loop remediation: signals in, guarded actions out (ROADMAP item 2).

The paper's bet (§4–§5) is that a runtime owning placement, routing and
telemetry can *operate itself*.  PR 9 built the sensing half — per-second
series, EWMA anomaly detectors, SLO burn rates, breaker and drain state in
``runtime.status`` — and this module closes the loop: a controller on the
manager's telemetry tick maps that evidence to remediation actions and
executes them through the machinery the manager already has
(``_retire_replica``, ``_ensure_replicas``, ``apply_placement``, routing
pushes).

Microservice failures cascade faster than human operators react (Gan &
Delimitrou), so remediation must be automatic — but a bad signal must not
be able to rampage, so every action passes a guardrail layer first
(the SmartOps closed-loop runbook pattern):

* **cooldowns** per (target, action type) — the same fix is never hammered,
* a **rolling-minute action budget** — a metric storm cannot translate
  into an action storm,
* a **blast-radius cap** — never act on more than a configured fraction
  of a group's replicas at once,
* **replica floors/ceilings** — ejection never drops a group below its
  autoscale floor, scale-up never exceeds its ceiling,
* a **global kill switch** — ``remediation: on | observe | off``, where
  ``observe`` journals every decision without executing (the dry-run mode
  operators enable first).

Every decision — fired, suppressed-by-guardrail, observed — lands in a
bounded action journal exported via ``runtime.status`` and the ``repro
actions`` CLI, so the controller's behaviour is as inspectable as the
failures it handles.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (manager owns us)
    from repro.runtime.manager import Manager

log = logging.getLogger("repro.runtime.remediation")

#: Action types the controller can take, in escalation order.
RESTART = "restart_replica"
EJECT = "eject_replica"
SCALE_UP = "scale_up"
ISOLATE = "isolate_component"

#: Breaker-trip storm threshold: trips of one component within the window
#: that corroborate "this component's replicas are failing".
BREAKER_TRIP_WINDOW_S = 10.0
BREAKER_TRIP_THRESHOLD = 3.0


@dataclass
class PlannedAction:
    """One remediation the mapper proposes, before guardrails."""

    action: str  # RESTART | EJECT | SCALE_UP | ISOLATE
    group_id: int
    #: Proclet id for replica-scoped actions, ``group<id>`` otherwise.
    target: str
    #: Component (or ``_total``) whose evidence triggered this.
    scope: str
    #: Human-readable evidence: signal key, suspect age, trip count.
    reason: str


class Guardrails:
    """The safety layer every planned action must clear.

    Verdicts are strings so the journal can say *which* guardrail
    suppressed an action, not just that one did.
    """

    def __init__(
        self,
        *,
        cooldown_s: float,
        max_actions_per_min: int,
        blast_fraction: float,
        clock=time.monotonic,
    ) -> None:
        self.cooldown_s = cooldown_s
        self.max_actions_per_min = max_actions_per_min
        self.blast_fraction = blast_fraction
        self._clock = clock
        #: (target, action) -> monotonic time the action last fired.
        self._last_fired: dict[tuple[str, str], float] = {}
        #: Monotonic fire times in the rolling minute (the action budget).
        self._fired_times: deque[float] = deque()
        #: Per-group recent victims: (time, target) — replicas restarted
        #: or ejected within the cooldown window count against the blast
        #: radius even after the action itself completed, so a burst of
        #: signals cannot roll through a group one replica per tick.
        self._group_recent: dict[int, deque[tuple[float, str]]] = {}

    # -- admission ---------------------------------------------------------

    def check(
        self,
        action: PlannedAction,
        *,
        live_replicas: int,
        floor: int,
        ceiling: int,
    ) -> Optional[str]:
        """None if the action may fire, else the suppression verdict."""
        now = self._clock()
        last = self._last_fired.get((action.target, action.action))
        if last is not None and now - last < self.cooldown_s:
            return "cooldown"
        self._prune(now)
        if len(self._fired_times) >= self.max_actions_per_min:
            return "budget"
        if action.action in (RESTART, EJECT):
            recent = self._group_recent.get(action.group_id, ())
            allowed = max(1, int(live_replicas * self.blast_fraction))
            if len(recent) >= allowed:
                return "blast_radius"
            if action.action == EJECT and live_replicas - 1 < floor:
                return "replica_floor"
            if action.action == RESTART and live_replicas < 1:
                return "replica_floor"
        if action.action == SCALE_UP and live_replicas + 1 > ceiling:
            return "replica_ceiling"
        return None

    def commit(self, action: PlannedAction) -> None:
        """Record that the action fired (spends budget, starts cooldowns)."""
        now = self._clock()
        self._last_fired[(action.target, action.action)] = now
        self._fired_times.append(now)
        if action.action in (RESTART, EJECT):
            self._group_recent.setdefault(action.group_id, deque()).append(
                (now, action.target)
            )

    def budget_left(self) -> int:
        self._prune(self._clock())
        return max(0, self.max_actions_per_min - len(self._fired_times))

    def _prune(self, now: float) -> None:
        while self._fired_times and now - self._fired_times[0] > 60.0:
            self._fired_times.popleft()
        for recent in self._group_recent.values():
            while recent and now - recent[0][0] > self.cooldown_s:
                recent.popleft()


class RemediationController:
    """Maps live evidence to guarded actions, once per telemetry tick.

    The mapping (see DESIGN.md for the full table):

    * a replica **SUSPECT** on heartbeat age → restart it (eject instead
      when the group is already at target without it) — acting at
      *suspect* is the whole speedup over the health sweep's
      conservative ``dead_after_s``;
    * a firing **latency** signal (p99 anomaly or latency SLO burn) →
      scale the offending group up one replica;
    * a firing **error** signal (error-rate anomaly or availability burn)
      or a **breaker-trip storm** → restart the group's worst replica;
      if the same signal keeps firing, escalate: restart → scale up →
      isolate the component into its own process (re-placement).
    """

    def __init__(self, manager: "Manager", config: Any) -> None:
        self.manager = manager
        self.mode = getattr(config, "remediation", "off")
        self.guardrails = Guardrails(
            cooldown_s=config.remediation_cooldown_s,
            max_actions_per_min=config.remediation_max_actions_per_min,
            blast_fraction=config.remediation_blast_fraction,
            clock=manager.clock,
        )
        self.journal: deque[dict[str, Any]] = deque(
            maxlen=config.remediation_journal_size
        )
        self.counts = {"fired": 0, "suppressed": 0, "observed": 0, "failed": 0}
        #: Escalation state per signal key: consecutive remediated firings.
        self._escalation: dict[str, int] = {}
        self._floor = config.autoscale.min_replicas
        self._ceiling = config.autoscale.max_replicas

    # -- the tick ----------------------------------------------------------

    async def tick(self, now: Optional[float] = None) -> list[dict[str, Any]]:
        """Plan, guard, journal, and (mode permitting) execute one round.

        Returns the journal entries appended this tick.
        """
        if self.mode == "off":
            return []
        now = time.time() if now is None else now
        appended: list[dict[str, Any]] = []
        seen_groups: set[int] = set()
        for action in self.plan():
            # One action per group per tick: remediations change the very
            # evidence later rules would act on.
            if action.group_id in seen_groups:
                continue
            entry = {
                "ts": now,
                "action": action.action,
                "target": action.target,
                "group": action.group_id,
                "scope": action.scope,
                "reason": action.reason,
                "verdict": "",
                "outcome": None,
                "duration_ms": None,
            }
            verdict = self.guardrails.check(
                action,
                live_replicas=self._live_count(action.group_id),
                floor=self._floor,
                ceiling=self._ceiling,
            )
            if verdict is not None:
                entry["verdict"] = f"suppressed:{verdict}"
                self._record(entry, "suppressed")
                appended.append(entry)
                continue
            if self.mode == "observe":
                entry["verdict"] = "observed"
                self._record(entry, "observed")
                appended.append(entry)
                continue
            seen_groups.add(action.group_id)
            self.guardrails.commit(action)
            entry["verdict"] = "fired"
            started = self.manager.clock()
            try:
                await self._execute(action)
                entry["outcome"] = "ok"
                self._record(entry, "fired")
            except Exception as exc:
                entry["outcome"] = f"failed: {type(exc).__name__}: {exc}"
                self._record(entry, "failed")
                log.exception("remediation %s on %s failed", action.action, action.target)
            entry["duration_ms"] = round(
                (self.manager.clock() - started) * 1000.0, 3
            )
            appended.append(entry)
        return appended

    # -- planning ----------------------------------------------------------

    def plan(self) -> list[PlannedAction]:
        """Map current health + signal evidence to proposed actions."""
        actions: list[PlannedAction] = []
        actions.extend(self._plan_suspects())
        actions.extend(self._plan_signals())
        actions.extend(self._plan_breaker_storms())
        return actions

    def _plan_suspects(self) -> list[PlannedAction]:
        from repro.runtime.health import HealthState

        manager = self.manager
        out: list[PlannedAction] = []
        for group in manager.group_states().values():
            for info in list(group.proclets.values()):
                if manager.health.state(info.proclet_id) is not HealthState.SUSPECT:
                    continue
                live = self._live_count(group.group_id)
                # The group survives at target strength without the
                # suspect: pure ejection.  Otherwise restart (eject +
                # replace) to hold replica count.
                action = EJECT if live - 1 >= group.target_replicas else RESTART
                out.append(
                    PlannedAction(
                        action=action,
                        group_id=group.group_id,
                        target=info.proclet_id,
                        scope=group.components[0] if group.components else "_total",
                        reason="health:suspect (missed heartbeats)",
                    )
                )
        return out

    def _plan_signals(self) -> list[PlannedAction]:
        board = getattr(self.manager, "signals", None)
        if board is None:
            return []
        out: list[PlannedAction] = []
        firing_keys: set[str] = set()
        for signal in board.firing():
            firing_keys.add(signal.key)
            latencyish = signal.name in ("p99_ms", "client_p99_ms", "latency")
            errorish = signal.name in ("error_rate", "availability")
            if not latencyish and not errorish:
                continue
            scope = self._resolve_scope(signal.scope, signal.name)
            group = self._group_of(scope)
            if group is None:
                continue
            level = self._escalation.get(signal.key, 0)
            if latencyish:
                # Latency pressure: more capacity first; a persistent
                # offender gets its own process (co-location is the
                # runtime's to undo, §3.1/§5.1).
                ladder = (SCALE_UP, SCALE_UP, ISOLATE)
            else:
                ladder = (RESTART, SCALE_UP, ISOLATE)
            step = ladder[min(level, len(ladder) - 1)]
            out.append(self._action_for(step, group, scope, signal.key))
        # Escalation bookkeeping: a signal still firing after remediation
        # climbs the ladder; one that resolved re-arms at level 0.
        for key in list(self._escalation):
            if key not in firing_keys:
                del self._escalation[key]
        return [a for a in out if a is not None]

    def _plan_breaker_storms(self) -> list[PlannedAction]:
        store = getattr(self.manager, "timeseries", None)
        if store is None:
            return []
        out: list[PlannedAction] = []
        for name, scope in store.names():
            if name != "breaker_trips" or scope == "_total":
                continue
            series = store.series(name, scope)
            latest = series.latest()
            if latest is None:
                continue
            trips = series.window_sum(BREAKER_TRIP_WINDOW_S, latest.ts)
            if trips < BREAKER_TRIP_THRESHOLD:
                continue
            group = self._group_of(scope)
            if group is None:
                continue
            out.append(
                self._action_for(
                    RESTART,
                    group,
                    scope,
                    f"breaker_trips={trips:.0f}/{BREAKER_TRIP_WINDOW_S:.0f}s",
                )
            )
        return [a for a in out if a is not None]

    def _action_for(self, step: str, group: Any, scope: str, reason: str):
        if step in (RESTART, EJECT):
            victim = self._pick_victim(group)
            if victim is None:
                return None
            return PlannedAction(
                action=step,
                group_id=group.group_id,
                target=victim,
                scope=scope,
                reason=reason,
            )
        if step == ISOLATE and len(group.components) < 2:
            # Already alone in its process: nothing to isolate from.
            step = SCALE_UP
        return PlannedAction(
            action=step,
            group_id=group.group_id,
            target=f"group{group.group_id}",
            scope=scope,
            reason=reason,
        )

    def _pick_victim(self, group: Any) -> Optional[str]:
        """The replica to restart: a suspect first, else the oldest.

        The manager cannot attribute client-side breaker trips to one
        address (trip counters are per component), so absent a suspect the
        longest-running replica is the deterministic choice — the one with
        the most accumulated state to go wrong, and the pick rotates as
        restarts mint fresh replicas.
        """
        from repro.runtime.health import HealthState

        manager = self.manager
        live = [
            info
            for info in group.proclets.values()
            if manager.health.state(info.proclet_id)
            in (HealthState.HEALTHY, HealthState.SUSPECT, HealthState.STARTING)
        ]
        if not live:
            return None
        suspects = [
            i
            for i in live
            if manager.health.state(i.proclet_id) is HealthState.SUSPECT
        ]
        pool = suspects or live
        return min(pool, key=lambda i: i.registered_at).proclet_id

    # -- execution ---------------------------------------------------------

    async def _execute(self, action: PlannedAction) -> None:
        manager = self.manager
        if action.action == RESTART:
            await manager.remediate_restart(action.target)
        elif action.action == EJECT:
            await manager.remediate_eject(action.target)
        elif action.action == SCALE_UP:
            await manager.remediate_scale_up(action.group_id, ceiling=self._ceiling)
        elif action.action == ISOLATE:
            await manager.remediate_isolate(action.scope)
        else:  # pragma: no cover - mapper only emits the four above
            raise ValueError(f"unknown remediation action {action.action!r}")
        # Only successful executions climb the escalation ladder.
        if action.reason.count(":") >= 2:  # signal keys look like kind:name:scope
            self._escalation[action.reason] = self._escalation.get(action.reason, 0) + 1

    # -- bookkeeping -------------------------------------------------------

    def _record(self, entry: dict[str, Any], bucket: str) -> None:
        self.journal.append(entry)
        self.counts[bucket] += 1
        metrics = getattr(self.manager, "_own_metrics", None)
        if metrics is not None:
            metrics.counter("remediation_actions").inc(
                action=entry["action"], verdict=bucket
            )
            self.manager._merged_metrics = None

    def _live_count(self, group_id: int) -> int:
        group = self.manager.group_states().get(group_id)
        if group is None:
            return 0
        return sum(
            1
            for info in group.proclets.values()
            if self.manager._is_live(info.proclet_id)
        )

    def _group_of(self, scope: str):
        manager = self.manager
        gid = manager._component_group.get(scope)
        return manager.group_states().get(gid) if gid is not None else None

    def _resolve_scope(self, scope: str, signal_name: str) -> str:
        """Deployment-wide signals act on the worst concrete component."""
        if scope != "_total":
            return scope
        store = getattr(self.manager, "timeseries", None)
        if store is None:
            return scope
        series_name = (
            "error_rate" if signal_name in ("error_rate", "availability") else "p99_ms"
        )
        worst, worst_value = scope, -1.0
        for name, s in store.names():
            if name != series_name or s == "_total" or s.startswith("_"):
                continue
            if s not in self.manager._component_group:
                continue
            value = store.latest(name, s) or 0.0
            if value > worst_value:
                worst, worst_value = s, value
        return worst

    # -- export ------------------------------------------------------------

    def to_wire(self) -> dict[str, Any]:
        """Machine-readable controller state for ``runtime.status``."""
        return {
            "mode": self.mode,
            "counts": dict(self.counts),
            "budget": {
                "max_actions_per_min": self.guardrails.max_actions_per_min,
                "available": self.guardrails.budget_left(),
                "cooldown_s": self.guardrails.cooldown_s,
                "blast_fraction": self.guardrails.blast_fraction,
            },
            "journal": [dict(e) for e in self.journal],
        }
