"""StateStore: every shard of one component, as seen by one replica.

Keys hash into a fixed number of shards (``key_hash(key) % num_shards``;
the count is deployment-stable config, so the key→shard mapping never
moves even as the ring reassigns shard *ownership*).  A replica attaches a
shard lazily on the first key it serves from it — replaying the on-disk
history — or eagerly when a drain handover pushes the shard's manifest at
it.  Which *keys* inside an attached shard this replica may actually serve
is not this layer's concern: per-key ownership is enforced above, in
:class:`repro.state.runtime.StateRuntime`, against the routing assignment.
"""

from __future__ import annotations

import itertools
import os
import re
import time
from typing import Any, Callable, Optional

from repro.state.shard import Shard, ShardManifest

_SAFE = re.compile(r"[^A-Za-z0-9_.-]+")


def _fs_name(name: str) -> str:
    """A filesystem-safe token for component / writer names."""
    return _SAFE.sub("_", name)


class StateStore:
    """All shards of one component owned (in part) by one replica."""

    def __init__(
        self,
        component: str,
        root: Optional[str],
        writer: str,
        *,
        num_shards: int = 16,
        fsync: bool = False,
        snapshot_every: int = 256,
        on_replay: Optional[Callable[[int, float], None]] = None,
    ) -> None:
        self.component = component
        self.writer = _fs_name(writer)
        self.num_shards = max(1, num_shards)
        self._fsync = fsync
        self._snapshot_every = snapshot_every
        self._root = (
            os.path.join(root, _fs_name(component)) if root is not None else None
        )
        self._shards: dict[int, Shard] = {}
        #: Distinct writer token per attachment: segments are single-writer,
        #: and one replica can re-attach a shard it detached earlier.
        self._attach_seq = itertools.count(1)
        self._on_replay = on_replay  # (records_replayed, seconds) per attach
        self.writes = 0
        self.reads = 0

    # -- shard plumbing ------------------------------------------------------

    def shard_id(self, key: str) -> int:
        from repro.runtime.routing import key_hash

        return key_hash(key) % self.num_shards

    def shard_dir(self, shard_id: int) -> Optional[str]:
        if self._root is None:
            return None
        return os.path.join(self._root, f"shard-{shard_id:04d}")

    def shard(self, shard_id: int) -> Shard:
        """The attached shard, attaching (and replaying) on first touch."""
        existing = self._shards.get(shard_id)
        if existing is not None:
            return existing
        shard = Shard(
            self.component,
            shard_id,
            self.shard_dir(shard_id),
            f"{self.writer}-{next(self._attach_seq)}",
            fsync=self._fsync,
            snapshot_every=self._snapshot_every,
        )
        started = time.perf_counter()
        shard.attach()
        if self._on_replay is not None:
            self._on_replay(shard.replayed_records, time.perf_counter() - started)
        self._shards[shard_id] = shard
        return shard

    def attached_shards(self) -> dict[int, Shard]:
        return dict(self._shards)

    # -- keyed operations (ownership already checked by the caller) ----------

    def get(self, key: str) -> Optional[Any]:
        self.reads += 1
        return self.shard(self.shard_id(key)).get(key)

    def contains(self, key: str) -> bool:
        return self.shard(self.shard_id(key)).contains(key)

    def put(self, key: str, value: Any) -> None:
        self.writes += 1
        self.shard(self.shard_id(key)).put(key, value)

    def delete(self, key: str) -> bool:
        self.writes += 1
        return self.shard(self.shard_id(key)).delete(key)

    def keys(self) -> list[str]:
        found: list[str] = []
        for shard in self._shards.values():
            found.extend(shard.keys())
        return found

    # -- handover ------------------------------------------------------------

    def export_handover(self) -> list[ShardManifest]:
        """Flush + snapshot every attached shard and detach: drain's export.

        Durable shards hand over a *reference* (their shared directory —
        the snapshot is the transfer); memory-only shards must ship their
        image inline or the state dies with this replica.
        """
        manifests: list[ShardManifest] = []
        for shard_id in sorted(self._shards):
            shard = self._shards.pop(shard_id)
            shard.snapshot()
            manifests.append(shard.manifest(inline=shard.directory is None))
            shard.close()
        return manifests

    def import_handover(self, manifest: ShardManifest) -> int:
        """Adopt one handed-over shard eagerly; returns records replayed.

        An already-attached shard (this replica was serving its own slice
        of the same shard) is *refreshed* — attach-time replay predates the
        retiree's final flush, so the disk must be re-merged.
        """
        existing = self._shards.get(manifest.shard_id)
        if existing is not None:
            replayed = existing.refresh()
            if manifest.inline is not None:
                existing.import_inline(manifest.inline)
            return replayed
        shard = self.shard(manifest.shard_id)
        if manifest.inline is not None:
            shard.import_inline(manifest.inline)
        return shard.replayed_records

    def refresh(self) -> int:
        """Re-merge disk state into every attached shard (ring changed)."""
        return sum(shard.refresh() for shard in self._shards.values())

    def detach(self) -> None:
        """Flush + snapshot + close every shard (component moved away)."""
        for shard in self._shards.values():
            shard.snapshot()
            shard.close()
        self._shards.clear()

    def close(self) -> None:
        for shard in self._shards.values():
            shard.close()
        self._shards.clear()

    def stats(self) -> dict[str, int]:
        return {
            "shards": len(self._shards),
            "keys": sum(len(s.keys()) for s in self._shards.values()),
            "reads": self.reads,
            "writes": self.writes,
        }
