"""StateRuntime: the per-proclet face of durable component state.

One :class:`StateRuntime` lives inside each proclet.  It owns a
:class:`~repro.state.store.StateStore` per hosted component, tracks the
latest routing :class:`~repro.runtime.routing.Assignment` the manager has
pushed for each one, and enforces *per-key ownership* on every operation:
a request that reaches this replica for a key the current assignment maps
elsewhere is rejected with a retryable :class:`~repro.core.errors.WrongOwner`
before it can touch state.  That rejection is what makes a stale caller
cache safe — the caller invalidates and re-resolves instead of silently
writing to the old owner.

Component implementations never see this class; they get the small async
:class:`ComponentState` facade as ``ctx.state``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Optional

from repro.core.errors import WrongOwner
from repro.runtime.routing import Assignment
from repro.state.shard import ShardManifest
from repro.state.store import StateStore


class StateRuntime:
    """Durable keyed state for every component hosted by one proclet."""

    def __init__(
        self,
        replica_id: str,
        root: Optional[str] = None,
        *,
        num_shards: int = 16,
        fsync: bool = False,
        snapshot_every: int = 256,
        metrics: Any = None,
    ) -> None:
        self.replica_id = replica_id
        self.root = root
        self.num_shards = num_shards
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.metrics = metrics
        #: The address callers route to; ownership compares against this.
        #: Unset until the proclet's server is listening — before that,
        #: ownership checks pass (single-process deployers never set it).
        self.self_address: Optional[str] = None
        self._stores: dict[str, StateStore] = {}
        self._assignments: dict[str, Assignment] = {}

    # -- wiring ---------------------------------------------------------------

    def set_self_address(self, address: Optional[str]) -> None:
        self.self_address = address

    def apply_routing_info(self, info: dict[str, Any]) -> None:
        """Ingest a manager routing push (same payload the resolver gets)."""
        raw = info.get("assignment")
        if raw:
            try:
                self.update_assignment(Assignment.from_wire(raw))
            except (KeyError, TypeError):
                pass  # malformed push: keep the assignment we have

    def update_assignment(self, assignment: Assignment) -> None:
        current = self._assignments.get(assignment.component)
        if current is None or assignment.generation > current.generation:
            self._assignments[assignment.component] = assignment
            if current is not None:
                # The ring changed while we hold attached shards: keys may
                # have moved *to* us, and their writers' flushed records
                # postdate our attach-time replay.  Re-merge the disk now
                # (synchronously — no request can slip in between the
                # assignment flip and the refresh on one event loop), so a
                # silently-killed owner's acknowledged writes are visible
                # the moment we start accepting its keys.  This is the
                # unplanned-failure twin of the drain handover push.
                store = self._stores.get(assignment.component)
                if store is not None:
                    started = time.perf_counter()
                    scanned = store.refresh()
                    if self.metrics is not None and scanned:
                        self.metrics.counter("state_refresh_records").inc(scanned)
                        self.metrics.histogram("state_replay_s").observe(
                            time.perf_counter() - started
                        )

    def assignment_for(self, component: str) -> Optional[Assignment]:
        return self._assignments.get(component)

    # -- stores ---------------------------------------------------------------

    def store(self, component: str) -> StateStore:
        existing = self._stores.get(component)
        if existing is not None:
            return existing
        store = StateStore(
            component,
            self.root,
            self.replica_id,
            num_shards=self.num_shards,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            on_replay=self._record_replay,
        )
        self._stores[component] = store
        return store

    def component_state(self, component: str) -> "ComponentState":
        return ComponentState(self, component)

    def _record_replay(self, records: int, seconds: float) -> None:
        if self.metrics is None:
            return
        self.metrics.counter("state_replayed_records").inc(records)
        self.metrics.histogram("state_replay_s").observe(seconds)

    # -- ownership ------------------------------------------------------------

    def check_owner(self, component: str, key: str) -> None:
        """Raise :class:`WrongOwner` if this replica must not serve ``key``.

        The check is deliberately permissive when information is missing:
        with no assignment yet (manager hasn't pushed one; single-process
        deployers never do) or no self address (server not started),
        every key is served locally.  Rejection requires positive evidence
        that someone else owns the key *now*.
        """
        if self.self_address is None:
            return
        assignment = self._assignments.get(component)
        if assignment is None or not assignment.points:
            return
        owner = assignment.replica_for(key)
        if owner != self.self_address:
            if self.metrics is not None:
                self.metrics.counter("state_wrong_owner").inc(
                    component=component
                )
            raise WrongOwner(
                f"{component} key {key!r} is owned by {owner} "
                f"(generation {assignment.generation}), not {self.self_address}",
                owner=owner,
            )

    # -- keyed operations (called by ComponentState) --------------------------

    def get(self, component: str, key: str) -> Optional[Any]:
        self.check_owner(component, key)
        return self.store(component).get(key)

    def contains(self, component: str, key: str) -> bool:
        self.check_owner(component, key)
        return self.store(component).contains(key)

    def put(self, component: str, key: str, value: Any) -> None:
        self.check_owner(component, key)
        self.store(component).put(key, value)
        if self.metrics is not None:
            self.metrics.counter("state_writes").inc(component=component)

    def update(
        self,
        component: str,
        key: str,
        fn: Callable[[Any], Any],
        default: Any = None,
    ) -> Any:
        """Read-modify-write under the proclet's single-threaded event loop."""
        self.check_owner(component, key)
        store = self.store(component)
        current = store.get(key)
        value = fn(default if current is None else current)
        store.put(key, value)
        if self.metrics is not None:
            self.metrics.counter("state_writes").inc(component=component)
        return value

    def delete(self, component: str, key: str) -> bool:
        self.check_owner(component, key)
        existed = self.store(component).delete(key)
        if self.metrics is not None:
            self.metrics.counter("state_writes").inc(component=component)
        return existed

    def keys(self, component: str) -> list[str]:
        """Keys attached *at this replica* (not the component's global set)."""
        return self.store(component).keys()

    # -- handover -------------------------------------------------------------

    def export_for_handover(self) -> list[dict[str, Any]]:
        """Flush + snapshot + detach everything; returns wire manifests.

        Called on drain: after this the replica owns nothing and any write
        that still arrives attaches fresh (correct, since the WAL survives),
        but the intended flow is that the manager re-routes first.
        """
        started = time.perf_counter()
        manifests: list[dict[str, Any]] = []
        for store in self._stores.values():
            for manifest in store.export_handover():
                manifests.append(manifest.to_wire())
        if self.metrics is not None and manifests:
            self.metrics.counter("state_handover_out").inc(len(manifests))
            self.metrics.histogram("state_handover_s").observe(
                time.perf_counter() - started
            )
        return manifests

    def import_handover(self, manifests: list[dict[str, Any]]) -> int:
        """Eagerly adopt handed-over shards; returns records replayed.

        Eager replay here is what bounds the rebalance stall: the new owner
        pays the replay cost at handover time, not on the first request.
        """
        started = time.perf_counter()
        replayed = 0
        for raw in manifests:
            manifest = ShardManifest.from_wire(raw)
            replayed += self.store(manifest.component).import_handover(manifest)
        if self.metrics is not None and manifests:
            self.metrics.counter("state_handover_in").inc(len(manifests))
            self.metrics.histogram("state_handover_s").observe(
                time.perf_counter() - started
            )
        return replayed

    def detach_component(self, component: str) -> None:
        store = self._stores.pop(component, None)
        if store is not None:
            store.detach()

    def close(self) -> None:
        for store in self._stores.values():
            store.close()
        self._stores.clear()

    # -- introspection --------------------------------------------------------

    def shard_map(self) -> dict[str, dict[str, Any]]:
        """Per-component view for ``runtime.status``."""
        view: dict[str, dict[str, Any]] = {}
        for component, store in self._stores.items():
            stats = store.stats()
            assignment = self._assignments.get(component)
            stats["generation"] = assignment.generation if assignment else 0
            stats["shard_ids"] = sorted(store.attached_shards())
            view[component] = stats
        return view


class ComponentState(object):
    """The ``ctx.state`` API: durable keyed state scoped to one component.

    All methods are async so implementations never care whether state is
    memory-only (single-process) or WAL-backed (multi-process); today the
    underlying operations complete synchronously before the ack returns,
    which is exactly the durability barrier the E16 gate relies on.
    """

    def __init__(self, runtime: StateRuntime, component: str) -> None:
        self._runtime = runtime
        self._component = component

    @staticmethod
    def _check_key(key: str) -> str:
        if not isinstance(key, str) or not key:
            raise TypeError("state keys must be non-empty strings")
        return key

    async def get(self, key: str, default: Any = None) -> Any:
        value = self._runtime.get(self._component, self._check_key(key))
        return default if value is None else value

    async def contains(self, key: str) -> bool:
        return self._runtime.contains(self._component, self._check_key(key))

    async def put(self, key: str, value: Any) -> None:
        self._runtime.put(self._component, self._check_key(key), value)

    async def update(
        self, key: str, fn: Callable[[Any], Any], default: Any = None
    ) -> Any:
        return self._runtime.update(
            self._component, self._check_key(key), fn, default
        )

    async def delete(self, key: str) -> bool:
        return self._runtime.delete(self._component, self._check_key(key))

    async def keys(self) -> list[str]:
        return self._runtime.keys(self._component)

    async def stats(self) -> dict[str, int]:
        return self._runtime.store(self._component).stats()
