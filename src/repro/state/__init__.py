"""repro.state — sharded durable component state (§5.2 taken to its end).

The paper's Slicer-analogue routes keyed requests to a consistent owner
replica; this package gives that owner something worth owning: a per-key
durable store whose acknowledged writes survive replica churn.

Layers (bottom up):

* :mod:`repro.state.wal` — per-writer append-only log segments with
  per-key versions; an acknowledged write is on disk before the ack.
* :mod:`repro.state.snapshot` — atomic point-in-time images that let a
  writer truncate its own covered segments.
* :mod:`repro.state.shard` — one hash-partition of a component's key
  space: in-memory image + WAL + snapshots in one directory, rebuilt by
  replaying whatever any previous owner left behind.
* :mod:`repro.state.store` — all shards of one component for one replica,
  with attach-on-demand and the handover export/import used by drain.
* :mod:`repro.state.runtime` — the per-proclet face: ownership checks
  against the routing assignment (misdirected writes get a retryable
  wrong-owner rejection) and the :class:`ComponentState` API handed to
  component implementations as ``ctx.state``.
"""

from repro.state.runtime import ComponentState, StateRuntime
from repro.state.shard import Shard, ShardManifest
from repro.state.snapshot import read_snapshots, write_snapshot
from repro.state.store import StateStore
from repro.state.wal import WalRecord, WalWriter, replay_segments

__all__ = [
    "ComponentState",
    "StateRuntime",
    "Shard",
    "ShardManifest",
    "StateStore",
    "WalRecord",
    "WalWriter",
    "replay_segments",
    "read_snapshots",
    "write_snapshot",
]
