"""Shard snapshots: point-in-time images that bound WAL replay cost.

A snapshot is one writer's merged view of a shard — every live key with
its version, plus delete tombstones (kept so an older put in another
writer's surviving segment cannot resurrect a deleted key on replay).
Snapshots are written atomically (temp file + ``os.replace``) and, like
WAL segments, are writer-owned: a writer replaces *its own* previous
snapshot and deletes *its own* covered segments, never another writer's
files.  Replay max-merges all snapshots and all segments per key by
version, so overlapping images from successive owners are harmless.
"""

from __future__ import annotations

import json
import os
from typing import Any

SNAPSHOT_PREFIX = "snap-"
SNAPSHOT_SUFFIX = ".json"


def snapshot_files(directory: str) -> list[str]:
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        n
        for n in names
        if n.startswith(SNAPSHOT_PREFIX) and n.endswith(SNAPSHOT_SUFFIX)
    )


def write_snapshot(
    directory: str,
    writer: str,
    seq: int,
    data: dict[str, tuple[int, Any]],
    tombstones: dict[str, int],
) -> str:
    """Atomically write ``snap-<writer>-<seq>.json``; returns the filename."""
    name = f"{SNAPSHOT_PREFIX}{writer}-{seq:08d}{SNAPSHOT_SUFFIX}"
    body = {
        "writer": writer,
        "seq": seq,
        "data": {k: [ver, value] for k, (ver, value) in data.items()},
        "tombs": dict(tombstones),
    }
    tmp = os.path.join(directory, name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as f:
        json.dump(body, f, separators=(",", ":"))
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, os.path.join(directory, name))
    return name


def read_snapshots(
    directory: str,
) -> tuple[dict[str, tuple[int, Any]], dict[str, int]]:
    """Max-merge every snapshot in ``directory`` per key by version."""
    data: dict[str, tuple[int, Any]] = {}
    tombs: dict[str, int] = {}
    for name in snapshot_files(directory):
        try:
            with open(os.path.join(directory, name), encoding="utf-8") as f:
                body = json.load(f)
        except (OSError, ValueError):
            continue  # torn snapshot: its writer's WAL segments still exist
        for key, pair in body.get("data", {}).items():
            ver, value = pair[0], pair[1]
            if key not in data or data[key][0] < ver:
                data[key] = (ver, value)
        for key, ver in body.get("tombs", {}).items():
            if tombs.get(key, -1) < ver:
                tombs[key] = ver
    return data, tombs


def prune_writer_files(directory: str, writer: str, keep: str) -> int:
    """Delete this writer's older snapshots, keeping ``keep``; returns count."""
    removed = 0
    marker = f"{SNAPSHOT_PREFIX}{writer}-"
    for name in snapshot_files(directory):
        if name.startswith(marker) and name != keep:
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
    return removed
