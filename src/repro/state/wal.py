"""Write-ahead log segments: the durability floor of ``repro.state``.

Every mutation is appended — and flushed — to a segment file *before* the
caller's write is acknowledged, so a silently killed replica can always be
reconstructed from disk by whoever owns the keys next.

Segments are **single-writer**: each (replica, shard) attachment opens its
own ``wal-<writer>-<n>.log`` and only ever appends to it.  Ownership of a
key moves between replicas over time (ring changes, handover), so a shard
directory accumulates segments from several historical writers; replay
merges them *per key* by the record's version number — at any instant one
replica owns a key and increments its version, so the highest version is
the last acknowledged write.  The single-writer rule is what makes
truncation safe: after a snapshot, a writer may delete segments it wrote
(they are fully covered by its own image) without ever touching another
writer's tail.

Records are JSON lines — small, debuggable, and append-atomic at these
sizes.  A torn final line (crash mid-append) is skipped on replay: the
write it held was never acknowledged, so dropping it loses nothing.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Optional

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


@dataclass(frozen=True)
class WalRecord:
    """One logged mutation: a put (``value`` set) or a delete tombstone."""

    key: str
    version: int
    value: object = None
    deleted: bool = False

    def to_line(self) -> bytes:
        body = {"k": self.key, "ver": self.version}
        if self.deleted:
            body["d"] = 1
        else:
            body["v"] = self.value
        return json.dumps(body, separators=(",", ":")).encode() + b"\n"

    @classmethod
    def from_line(cls, line: bytes) -> Optional["WalRecord"]:
        """Parse one segment line; None for torn/garbage lines."""
        try:
            body = json.loads(line)
        except ValueError:
            return None
        if not isinstance(body, dict) or "k" not in body or "ver" not in body:
            return None
        return cls(
            key=body["k"],
            version=body["ver"],
            value=body.get("v"),
            deleted=bool(body.get("d")),
        )


class WalWriter:
    """Append-only handle on one writer-owned segment file."""

    def __init__(self, path: str, *, fsync: bool = False) -> None:
        self.path = path
        self._fsync = fsync
        self.appended = 0
        self._file = open(path, "ab")

    def append(self, record: WalRecord) -> None:
        """Durably log one record (flushed before returning — this is the
        ack barrier: callers only acknowledge after append returns)."""
        self._file.write(record.to_line())
        self._file.flush()
        if self._fsync:
            os.fsync(self._file.fileno())
        self.appended += 1

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass

    @property
    def closed(self) -> bool:
        return self._file.closed


def segment_files(directory: str) -> list[str]:
    """All segment filenames in ``directory``, oldest-first by name."""
    try:
        names = os.listdir(directory)
    except FileNotFoundError:
        return []
    return sorted(
        n for n in names if n.startswith(SEGMENT_PREFIX) and n.endswith(SEGMENT_SUFFIX)
    )


def replay_segments(
    directory: str, names: Optional[Iterable[str]] = None
) -> Iterable[WalRecord]:
    """Yield every intact record from the named (or all) segments."""
    for name in segment_files(directory) if names is None else names:
        path = os.path.join(directory, name)
        try:
            with open(path, "rb") as f:
                for line in f:
                    record = WalRecord.from_line(line)
                    if record is not None:
                        yield record
        except FileNotFoundError:
            continue
