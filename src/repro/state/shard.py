"""One shard: a hash-partition of a component's keys with its own WAL.

A shard's on-disk life is one directory::

    <state_root>/<component>/<shard_id>/
        wal-<writer>.log      # append-only segments, one per attachment
        snap-<writer>-N.json  # point-in-time images

A replica *attaches* a shard before serving any of its keys: it replays
every snapshot and segment left by previous owners (max-merge per key by
version) and opens a fresh segment of its own.  From then on every
mutation is WAL-appended before it is acknowledged.  Versions are per-key
monotonic counters: the attaching replica resumes from the highest version
it replayed, and since the router gives each key a single owner at a time,
the highest version always identifies the last acknowledged write — the
invariant the E16 chaos gate checks.

With ``directory=None`` the shard is memory-only (no durability): the
single-process deployer uses this so ``ctx.state`` behaves identically
everywhere, minus crash recovery.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.state import snapshot as snap
from repro.state import wal


@dataclass(frozen=True)
class ShardManifest:
    """What a retiring owner hands the manager about one flushed shard."""

    component: str
    shard_id: int
    directory: Optional[str]
    keys: int
    last_version: int
    #: Inline image for memory-mode shards (no shared directory to point at).
    inline: Optional[dict[str, Any]] = field(default=None, hash=False)

    def to_wire(self) -> dict[str, Any]:
        body: dict[str, Any] = {
            "component": self.component,
            "shard": self.shard_id,
            "dir": self.directory,
            "keys": self.keys,
            "last_version": self.last_version,
        }
        if self.inline is not None:
            body["inline"] = self.inline
        return body

    @classmethod
    def from_wire(cls, raw: dict[str, Any]) -> "ShardManifest":
        return cls(
            component=raw["component"],
            shard_id=raw["shard"],
            directory=raw.get("dir"),
            keys=raw.get("keys", 0),
            last_version=raw.get("last_version", 0),
            inline=raw.get("inline"),
        )


class Shard:
    """In-memory image + durability for one hash-partition of a component."""

    def __init__(
        self,
        component: str,
        shard_id: int,
        directory: Optional[str],
        writer: str,
        *,
        fsync: bool = False,
        snapshot_every: int = 256,
    ) -> None:
        self.component = component
        self.shard_id = shard_id
        self.directory = directory
        self.writer = writer
        self._fsync = fsync
        self._snapshot_every = max(1, snapshot_every)
        #: key -> (version, value) for live keys.
        self._data: dict[str, tuple[int, Any]] = {}
        #: key -> version of the winning delete (replay anti-resurrection).
        self._tombs: dict[str, int] = {}
        self._wal: Optional[wal.WalWriter] = None
        self._snap_seq = 0
        self._appends_since_snapshot = 0
        self.replayed_records = 0
        # With a multi-worker data plane, RPCs for the same component can
        # execute on different worker loops; the version counter and the
        # WAL append must stay a single atomic step per mutation.
        # Reentrant because _log() can roll into snapshot().
        self._write_lock = threading.RLock()

    # -- lifecycle -----------------------------------------------------------

    def attach(self) -> None:
        """Replay what previous owners left, then open our own segment."""
        if self.directory is None:
            return
        os.makedirs(self.directory, exist_ok=True)
        data, tombs = snap.read_snapshots(self.directory)
        self._data, self._tombs = data, tombs
        for record in wal.replay_segments(self.directory):
            self.replayed_records += 1
            self._apply(record)
        self._open_segment()

    def _open_segment(self) -> None:
        assert self.directory is not None
        path = os.path.join(self.directory, f"wal-{self.writer}.log")
        self._wal = wal.WalWriter(path, fsync=self._fsync)

    def _apply(self, record: wal.WalRecord) -> None:
        """Max-merge one replayed record into the in-memory image."""
        if record.deleted:
            if self._tombs.get(record.key, -1) < record.version:
                self._tombs[record.key] = record.version
                current = self._data.get(record.key)
                if current is not None and current[0] <= record.version:
                    del self._data[record.key]
        else:
            current = self._data.get(record.key)
            if (current is None or current[0] < record.version) and self._tombs.get(
                record.key, -1
            ) < record.version:
                self._data[record.key] = (record.version, record.value)

    def refresh(self) -> int:
        """Max-merge whatever is on disk *now* into the live image.

        Used when key ownership shifts toward this replica while the shard
        is already attached (ring change, handover): other writers flushed
        records after our attach-time replay, and those keys may be ours
        now.  Re-reading our own files too is harmless — versions make the
        merge idempotent.  Returns the number of WAL records scanned.
        """
        if self.directory is None:
            return 0
        data, tombs = snap.read_snapshots(self.directory)
        for key, (ver, value) in data.items():
            self._apply(wal.WalRecord(key=key, version=ver, value=value))
        for key, ver in tombs.items():
            self._apply(wal.WalRecord(key=key, version=ver, deleted=True))
        scanned = 0
        for record in wal.replay_segments(self.directory):
            scanned += 1
            self._apply(record)
        return scanned

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    @property
    def attached(self) -> bool:
        return self.directory is None or self._wal is not None

    # -- operations ----------------------------------------------------------

    def get(self, key: str) -> Optional[Any]:
        entry = self._data.get(key)
        return entry[1] if entry is not None else None

    def contains(self, key: str) -> bool:
        return key in self._data

    def keys(self) -> list[str]:
        return list(self._data)

    def _next_version(self, key: str) -> int:
        entry = self._data.get(key)
        floor = entry[0] if entry is not None else 0
        return max(floor, self._tombs.get(key, 0)) + 1

    def put(self, key: str, value: Any) -> None:
        with self._write_lock:
            version = self._next_version(key)
            self._log(wal.WalRecord(key=key, version=version, value=value))
            self._data[key] = (version, value)
            self._tombs.pop(key, None)

    def delete(self, key: str) -> bool:
        with self._write_lock:
            existed = key in self._data
            version = self._next_version(key)
            self._log(wal.WalRecord(key=key, version=version, deleted=True))
            self._data.pop(key, None)
            self._tombs[key] = version
            return existed

    def _log(self, record: wal.WalRecord) -> None:
        if self._wal is None:
            return  # memory-only shard: the in-memory image is the state
        self._wal.append(record)
        self._appends_since_snapshot += 1
        if self._appends_since_snapshot >= self._snapshot_every:
            self.snapshot()

    # -- snapshot / handover -------------------------------------------------

    def snapshot(self) -> Optional[str]:
        """Write a full image, truncate our own covered log, prune old images.

        Only this writer's files are ever deleted: another replica may be
        appending to its own open segment in the same directory (two owners
        of disjoint key subsets of one shard), and its tail must survive.
        """
        with self._write_lock:
            if self.directory is None or self._wal is None:
                return None
            self._snap_seq += 1
            name = snap.write_snapshot(
                self.directory, self.writer, self._snap_seq, self._data, self._tombs
            )
            # Rotate: our previous segment is fully covered by the image.
            self._wal.close()
            try:
                os.unlink(self._wal.path)
            except OSError:
                pass
            snap.prune_writer_files(self.directory, self.writer, keep=name)
            self._open_segment()
            self._appends_since_snapshot = 0
            return name

    def last_version(self) -> int:
        versions = [v for v, _ in self._data.values()]
        versions.extend(self._tombs.values())
        return max(versions, default=0)

    def manifest(self, *, inline: bool = False) -> ShardManifest:
        return ShardManifest(
            component=self.component,
            shard_id=self.shard_id,
            directory=self.directory,
            keys=len(self._data),
            last_version=self.last_version(),
            inline=self.export_inline() if inline else None,
        )

    def export_inline(self) -> dict[str, Any]:
        return {
            "data": {k: [ver, value] for k, (ver, value) in self._data.items()},
            "tombs": dict(self._tombs),
        }

    def import_inline(self, payload: dict[str, Any]) -> None:
        """Max-merge a handed-over inline image (memory-mode handover)."""
        for key, pair in payload.get("data", {}).items():
            record = wal.WalRecord(key=key, version=pair[0], value=pair[1])
            self._apply(record)
        for key, ver in payload.get("tombs", {}).items():
            self._apply(wal.WalRecord(key=key, version=ver, deleted=True))
