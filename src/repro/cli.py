"""Command-line interface: deploy and inspect applications from a shell.

The Go prototype ships ``weaver multi deploy config.toml``; this is the
Python mirror::

    python -m repro deploy app.toml --module repro.boutique
    python -m repro deploy app.toml --module repro.boutique --subprocess
    python -m repro components --module repro.boutique
    python -m repro version --module repro.boutique

``deploy`` imports the named modules (running their ``@implements``
registrations), deploys every registered component per the TOML config,
optionally drives a load burst against the boutique frontend, and prints
the aggregated status report (Figure 3's dashboard) before shutting down.
"""

from __future__ import annotations

import argparse
import asyncio
import importlib
import sys
from typing import Optional

from repro.core.config import AppConfig
from repro.core.errors import WeaverError
from repro.core.registry import global_registry


def _import_modules(modules: list[str]) -> None:
    for module in modules:
        importlib.import_module(module)


def _build_config(args: argparse.Namespace) -> AppConfig:
    if args.config:
        return AppConfig.load(args.config)
    return AppConfig(name="cli-app")


DEFAULT_DASHBOARD = "http://127.0.0.1:8090"


async def _cmd_deploy(args: argparse.Namespace) -> int:
    from repro.runtime.deployers.multi import deploy_multiprocess
    from repro.runtime.status import render_status

    _import_modules(args.module)
    config = _build_config(args)
    mode = "subprocess" if args.subprocess else "inproc"
    print(f"deploying {config.name!r} (mode={mode}) ...", file=sys.stderr)
    app = await deploy_multiprocess(config, mode=mode, autoscale=args.autoscale)
    try:
        print(
            f"version {app.version}, {app.manager.total_replicas()} proclet(s) running",
            file=sys.stderr,
        )
        if args.dashboard is not None:
            url = await app.serve_dashboard(port=args.dashboard)
            print(f"dashboard at {url}", file=sys.stderr)
        if args.drive_boutique:
            from repro.sim.realtime import drive_boutique

            result = await drive_boutique(
                app, qps=args.qps, duration_s=args.duration, users=10
            )
            print(
                f"drove {result.requests} requests at ~{result.achieved_qps:.0f} QPS: "
                f"median {result.median_latency_ms:.2f}ms, "
                f"p95 {result.p95_latency_ms:.2f}ms, errors {result.errors}",
                file=sys.stderr,
            )
            await asyncio.sleep(1.0)  # let telemetry heartbeats land
        elif args.duration > 0:
            print(f"serving for {args.duration:.0f}s ...", file=sys.stderr)
            await asyncio.sleep(args.duration)
        print(render_status(app.manager))
    finally:
        await app.shutdown()
    return 0


async def _cmd_status(args: argparse.Namespace) -> int:
    """Print a running deployment's status by asking its dashboard server."""
    from repro.observability.dashboard import fetch

    if args.json:
        print(await asyncio.to_thread(fetch, f"{args.address}/status.json"))
    else:
        print(await asyncio.to_thread(fetch, f"{args.address}/dashboard.txt"))
    return 0


async def _cmd_top(args: argparse.Namespace) -> int:
    """Live auto-refreshing terminal dashboard (like ``top``, for proclets)."""
    from repro.observability.dashboard import CLEAR, fetch

    color = sys.stdout.isatty()
    while True:
        body = await asyncio.to_thread(fetch, f"{args.address}/dashboard.txt")
        if color:
            sys.stdout.write(CLEAR)
        sys.stdout.write(body + "\n")
        sys.stdout.flush()
        if args.once:
            return 0
        await asyncio.sleep(args.interval)


async def _cmd_actions(args: argparse.Namespace) -> int:
    """Show the remediation controller's action journal and guardrail state."""
    import json as _json

    from repro.observability.dashboard import fetch_json

    status = await asyncio.to_thread(fetch_json, f"{args.address}/status.json")
    wire = status.get("remediation")
    if wire is None:
        print("deployment exposes no remediation controller", file=sys.stderr)
        return 1
    if args.json:
        print(_json.dumps(wire, indent=2))
        return 0
    counts = wire.get("counts", {})
    budget = wire.get("budget", {})
    print(
        f"remediation mode={wire.get('mode', '?')}  "
        f"fired={counts.get('fired', 0)} observed={counts.get('observed', 0)} "
        f"suppressed={counts.get('suppressed', 0)} failed={counts.get('failed', 0)}"
    )
    print(
        f"budget: {budget.get('available', '?')}/"
        f"{budget.get('max_actions_per_min', '?')} actions available this minute, "
        f"cooldown {budget.get('cooldown_s', '?')}s, "
        f"blast radius {budget.get('blast_fraction', 0):.0%} of a group"
    )
    journal = wire.get("journal", [])
    if not journal:
        print("journal: empty (no decisions yet)")
        return 0
    print(f"journal ({len(journal)} entries, newest last):")
    for entry in journal[-args.last :]:
        outcome = entry.get("outcome")
        tail = f" -> {outcome}" if outcome else ""
        print(
            f"  [{entry.get('verdict', '?'):<20s}] {entry.get('action', '?'):<16s} "
            f"{entry.get('target', '?'):<24s} {entry.get('reason', '')}{tail}"
        )
    return 0


async def _cmd_trace(args: argparse.Namespace) -> int:
    """Render one trace (call tree + critical path) from a running deployment."""
    from repro.observability.dashboard import fetch

    print(await asyncio.to_thread(fetch, f"{args.address}/trace/{args.trace_id}"))
    return 0


async def _cmd_components(args: argparse.Namespace) -> int:
    _import_modules(args.module)
    build = global_registry().freeze()
    print(f"deployment version: {build.version}")
    for reg in build:
        methods = ", ".join(
            m.name + (f"@{m.routing_key}" if m.routing_key else "")
            for m in reg.spec.methods
        )
        print(f"  [{reg.component_id:2d}] {reg.name}")
        print(f"       impl: {reg.impl.__module__}.{reg.impl.__qualname__}")
        print(f"       methods: {methods}")
    return 0


async def _cmd_version(args: argparse.Namespace) -> int:
    import repro

    print(f"repro {repro.__version__}")
    if args.module:
        _import_modules(args.module)
        build = global_registry().freeze()
        print(f"deployment version: {build.version} ({len(build)} components)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    deploy = sub.add_parser("deploy", help="deploy registered components")
    deploy.add_argument("config", nargs="?", default=None, help="TOML config file")
    deploy.add_argument(
        "--module",
        action="append",
        default=[],
        required=True,
        help="module(s) to import for @implements registrations",
    )
    deploy.add_argument(
        "--subprocess", action="store_true", help="one OS process per proclet"
    )
    deploy.add_argument("--autoscale", action="store_true", help="enable the HPA loop")
    deploy.add_argument(
        "--drive-boutique",
        action="store_true",
        help="drive the Locust mix against the boutique frontend",
    )
    deploy.add_argument("--qps", type=float, default=50.0)
    deploy.add_argument("--duration", type=float, default=3.0)
    deploy.add_argument(
        "--dashboard",
        type=int,
        nargs="?",
        const=8090,
        default=None,
        metavar="PORT",
        help="serve the live dashboard on PORT (default 8090)",
    )
    deploy.set_defaults(handler=_cmd_deploy)

    status = sub.add_parser("status", help="query a running deployment's status")
    status.add_argument("--address", default=DEFAULT_DASHBOARD)
    status.add_argument(
        "--json", action="store_true", help="machine-readable status JSON"
    )
    status.set_defaults(handler=_cmd_status)

    top = sub.add_parser("top", help="live auto-refreshing dashboard")
    top.add_argument("--address", default=DEFAULT_DASHBOARD)
    top.add_argument("--interval", type=float, default=1.0)
    top.add_argument("--once", action="store_true", help="render one frame and exit")
    top.set_defaults(handler=_cmd_top)

    actions = sub.add_parser(
        "actions", help="show the remediation controller's action journal"
    )
    actions.add_argument("--address", default=DEFAULT_DASHBOARD)
    actions.add_argument(
        "--json", action="store_true", help="raw remediation wire JSON"
    )
    actions.add_argument(
        "--last", type=int, default=20, help="journal entries to show (default 20)"
    )
    actions.set_defaults(handler=_cmd_actions)

    trace = sub.add_parser("trace", help="show one trace's call tree")
    trace.add_argument("trace_id", help="trace id (hex or decimal)")
    trace.add_argument("--address", default=DEFAULT_DASHBOARD)
    trace.set_defaults(handler=_cmd_trace)

    components = sub.add_parser("components", help="list registered components")
    components.add_argument("--module", action="append", default=[], required=True)
    components.set_defaults(handler=_cmd_components)

    version = sub.add_parser("version", help="print versions")
    version.add_argument("--module", action="append", default=[])
    version.set_defaults(handler=_cmd_version)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return asyncio.run(args.handler(args))
    except WeaverError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:  # dashboard unreachable, bad port, ...
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
