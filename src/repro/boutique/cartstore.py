"""CartStore component — the demo's Redis, as a routed component.

The original application backs cartservice with Redis.  Here the store is
itself a component whose methods are ``@routed(by="user_id")``: all
operations for one user land on the same replica (§5.2's cache example),
so per-replica storage behaves like a sharded store without any external
service.  This is exactly the architecture §5.2 argues for: affinity
routing embedded in the application, replacing a remote key-value hop
(citing [43], "Fast key-value stores: an idea whose time has come and
gone").

Storage is ``ctx.state`` (:mod:`repro.state`): under the multiprocess
deployer each acknowledged cart write is WAL-backed and survives replica
kills, autoscale shrink, and shard handover; under the single-process
deployer the same code runs against memory-only state.
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent, routed
from repro.core.component import Component, ComponentContext, implements
from repro.boutique.types import CartItem


class CartStore(Component):
    """Sharded, durable storage of cart lines per user."""

    @routed(by="user_id")
    async def add(self, user_id: str, item: CartItem) -> None: ...

    @idempotent
    @routed(by="user_id")
    async def get(self, user_id: str) -> list[CartItem]: ...

    @idempotent
    @routed(by="user_id")
    async def clear(self, user_id: str) -> None: ...

    @idempotent
    @routed(by="user_id")
    async def stats(self, user_id: str) -> dict[str, int]: ...


@implements(CartStore)
class CartStoreImpl:
    def __init__(self) -> None:
        self._state = None
        self._hits = 0
        self._misses = 0

    async def init(self, ctx: ComponentContext) -> None:
        self._state = ctx.state

    async def add(self, user_id: str, item: CartItem) -> None:
        if item.quantity <= 0:
            raise ValueError(f"quantity must be positive, got {item.quantity}")

        def merge(cart: dict) -> dict:
            cart = dict(cart)
            cart[item.product_id] = cart.get(item.product_id, 0) + item.quantity
            return cart

        await self._state.update(user_id, merge, default={})

    async def get(self, user_id: str) -> list[CartItem]:
        cart = await self._state.get(user_id)
        if cart is None:
            self._misses += 1
            return []
        self._hits += 1
        return [CartItem(pid, qty) for pid, qty in sorted(cart.items())]

    async def clear(self, user_id: str) -> None:
        await self._state.delete(user_id)

    async def stats(self, user_id: str) -> dict[str, int]:
        """Replica-local hit/miss counters (the routing benchmark reads
        these to measure affinity quality)."""
        return {
            "hits": self._hits,
            "misses": self._misses,
            "users": len(await self._state.keys()),
        }
