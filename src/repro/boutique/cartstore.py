"""CartStore component — the demo's Redis, as a routed component.

The original application backs cartservice with Redis.  Here the store is
itself a component whose methods are ``@routed(by="user_id")``: all
operations for one user land on the same replica (§5.2's cache example),
so per-replica in-memory dicts behave like a sharded store without any
external service.  This is exactly the architecture §5.2 argues for:
affinity routing embedded in the application, replacing a remote key-value
hop (citing [43], "Fast key-value stores: an idea whose time has come and
gone").
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent, routed
from repro.core.component import Component, implements
from repro.boutique.types import CartItem


class CartStore(Component):
    """Sharded, replica-local storage of cart lines per user."""

    @routed(by="user_id")
    async def add(self, user_id: str, item: CartItem) -> None: ...

    @idempotent
    @routed(by="user_id")
    async def get(self, user_id: str) -> list[CartItem]: ...

    @idempotent
    @routed(by="user_id")
    async def clear(self, user_id: str) -> None: ...

    @idempotent
    @routed(by="user_id")
    async def stats(self, user_id: str) -> dict[str, int]: ...


@implements(CartStore)
class CartStoreImpl:
    def __init__(self) -> None:
        self._carts: dict[str, dict[str, int]] = {}
        self._hits = 0
        self._misses = 0

    async def add(self, user_id: str, item: CartItem) -> None:
        if item.quantity <= 0:
            raise ValueError(f"quantity must be positive, got {item.quantity}")
        cart = self._carts.setdefault(user_id, {})
        cart[item.product_id] = cart.get(item.product_id, 0) + item.quantity

    async def get(self, user_id: str) -> list[CartItem]:
        cart = self._carts.get(user_id)
        if cart is None:
            self._misses += 1
            return []
        self._hits += 1
        return [CartItem(pid, qty) for pid, qty in sorted(cart.items())]

    async def clear(self, user_id: str) -> None:
        self._carts.pop(user_id, None)

    async def stats(self, user_id: str) -> dict[str, int]:
        """Replica-local hit/miss counters (the routing benchmark reads
        these to measure affinity quality)."""
        return {"hits": self._hits, "misses": self._misses, "users": len(self._carts)}
