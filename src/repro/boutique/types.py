"""Shared message types of the Online Boutique application (§6.1).

These mirror the protobuf messages of GoogleCloudPlatform's
``microservices-demo`` (the "popular web application [41]" of the paper's
evaluation), expressed as plain dataclasses: the framework derives wire
schemas from them (:mod:`repro.codegen.schema`), so the developer writes no
serialization code — the paper's core ergonomic claim.

Money arithmetic follows the demo's units/nanos convention: ``units`` whole
currency units plus ``nanos`` billionths, with matching signs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

NANOS_PER_UNIT = 1_000_000_000


class PaymentError(Exception):
    """Raised by the payment service for invalid or declined cards."""


class CheckoutError(Exception):
    """Raised when an order cannot be placed."""


@dataclass(frozen=True)
class Money:
    currency_code: str
    units: int
    nanos: int

    def validate(self) -> "Money":
        if abs(self.nanos) >= NANOS_PER_UNIT:
            raise ValueError(f"nanos out of range: {self.nanos}")
        if self.units > 0 and self.nanos < 0 or self.units < 0 and self.nanos > 0:
            raise ValueError(f"units and nanos signs disagree: {self}")
        return self

    def as_float(self) -> float:
        return self.units + self.nanos / NANOS_PER_UNIT

    def __add__(self, other: "Money") -> "Money":
        if self.currency_code != other.currency_code:
            raise ValueError(
                f"cannot add {self.currency_code} and {other.currency_code}"
            )
        units = self.units + other.units
        nanos = self.nanos + other.nanos
        # Carry and sign-normalize.
        if abs(nanos) >= NANOS_PER_UNIT:
            units += 1 if nanos > 0 else -1
            nanos -= NANOS_PER_UNIT if nanos > 0 else -NANOS_PER_UNIT
        if units > 0 and nanos < 0:
            units -= 1
            nanos += NANOS_PER_UNIT
        elif units < 0 and nanos > 0:
            units += 1
            nanos -= NANOS_PER_UNIT
        return Money(self.currency_code, units, nanos)

    def multiply(self, quantity: int) -> "Money":
        total_nanos = (self.units * NANOS_PER_UNIT + self.nanos) * quantity
        return from_nanos(self.currency_code, total_nanos)


def from_nanos(currency_code: str, total_nanos: int) -> Money:
    units, nanos = divmod(abs(total_nanos), NANOS_PER_UNIT)
    sign = -1 if total_nanos < 0 else 1
    return Money(currency_code, sign * units, sign * nanos)


def zero(currency_code: str) -> Money:
    return Money(currency_code, 0, 0)


@dataclass(frozen=True)
class Product:
    id: str
    name: str
    description: str
    picture: str
    price: Money
    categories: list[str]


@dataclass(frozen=True)
class CartItem:
    product_id: str
    quantity: int


@dataclass(frozen=True)
class Address:
    street_address: str
    city: str
    state: str
    country: str
    zip_code: int


@dataclass(frozen=True)
class CreditCard:
    number: str
    cvv: int
    expiration_year: int
    expiration_month: int


@dataclass(frozen=True)
class OrderItem:
    item: CartItem
    cost: Money


@dataclass(frozen=True)
class OrderResult:
    order_id: str
    shipping_tracking_id: str
    shipping_cost: Money
    shipping_address: Address
    items: list[OrderItem]

    def total(self, currency_code: str) -> Money:
        total = Money(currency_code, self.shipping_cost.units, self.shipping_cost.nanos)
        for oi in self.items:
            total = total + oi.cost.multiply(oi.item.quantity)
        return total


@dataclass(frozen=True)
class Ad:
    redirect_url: str
    text: str


@dataclass(frozen=True)
class ShipQuote:
    cost: Money
    tracking_eta_days: int


@dataclass(frozen=True)
class ChargeResult:
    transaction_id: str
    amount: Money


@dataclass(frozen=True)
class HomePage:
    """What the frontend renders for '/': the full fan-out result."""

    products: list[Product]
    cart_size: int
    ad: Ad
    currency_codes: list[str]


@dataclass(frozen=True)
class OrderConfirmation:
    email: str
    order: OrderResult
    body: str
