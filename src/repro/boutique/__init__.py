"""Online Boutique, ported to components (§6.1).

    "The application has eleven microservices ... We then ported the
    application to our prototype, with each microservice rewritten as a
    component."

The eleven components (the demo's ten services plus its Redis, which here
is the routed :class:`CartStore`):

======================  ===================================================
Frontend                page-level fan-out facade (the load target)
ProductCatalog          product list / lookup / search
Cart                    cart domain logic
CartStore               sharded per-user storage (routed; the Redis stand-in)
Currency                money conversion (EUR-based table)
Payment                 Luhn validation + charge
Shipping                quotes and tracking ids
Email                   order confirmations
Checkout                the place-order orchestration
Recommendation          related-product suggestions
Ads                     contextual ads
======================  ===================================================

Importing this package registers every implementation; deployers freeze
the registry over ``ALL_COMPONENTS``.
"""

from repro.boutique.ads import Ads, AdsImpl
from repro.boutique.cart import Cart, CartImpl
from repro.boutique.cartstore import CartStore, CartStoreImpl
from repro.boutique.catalog import ProductCatalog, ProductCatalogImpl, ProductNotFound
from repro.boutique.checkout import Checkout, CheckoutImpl
from repro.boutique.currency import Currency, CurrencyImpl, UnsupportedCurrency
from repro.boutique.email import Email, EmailImpl
from repro.boutique.frontend import Frontend, FrontendImpl
from repro.boutique.httpfront import BoutiqueHttpServer, serve as serve_http
from repro.boutique.payment import Payment, PaymentImpl
from repro.boutique.recommendation import Recommendation, RecommendationImpl
from repro.boutique.shipping import Shipping, ShippingImpl
from repro.boutique.types import (
    Ad,
    Address,
    CartItem,
    ChargeResult,
    CheckoutError,
    CreditCard,
    HomePage,
    Money,
    OrderItem,
    OrderResult,
    PaymentError,
    Product,
    ShipQuote,
)

#: The eleven components of the evaluation application, in a stable order.
ALL_COMPONENTS: list[type] = [
    Ads,
    Cart,
    CartStore,
    Checkout,
    Currency,
    Email,
    Frontend,
    Payment,
    ProductCatalog,
    Recommendation,
    Shipping,
]

__all__ = [
    "ALL_COMPONENTS",
    "Ads",
    "Cart",
    "CartStore",
    "Checkout",
    "Currency",
    "Email",
    "Frontend",
    "Payment",
    "ProductCatalog",
    "Recommendation",
    "Shipping",
    "BoutiqueHttpServer",
    "serve_http",
    "ProductNotFound",
    "UnsupportedCurrency",
    "Ad",
    "Address",
    "CartItem",
    "ChargeResult",
    "CheckoutError",
    "CreditCard",
    "HomePage",
    "Money",
    "OrderItem",
    "OrderResult",
    "PaymentError",
    "Product",
    "ShipQuote",
]
