"""Ads component — port of the demo's adservice.

Context-keyed ads with a deterministic-random fallback, like the Java
original: given category context it returns matching ads, otherwise a
pseudo-random one (seeded per instance so tests are stable).
"""

from __future__ import annotations

import random

from repro.codegen.compiler import idempotent
from repro.core.component import Component, implements
from repro.boutique.data import ADS_BY_CATEGORY
from repro.boutique.types import Ad


class Ads(Component):
    @idempotent
    async def get_ads(self, context_keys: list[str]) -> list[Ad]: ...


@implements(Ads)
class AdsImpl:
    def __init__(self) -> None:
        self._by_category = {
            category: [Ad(url, text) for url, text in entries]
            for category, entries in ADS_BY_CATEGORY.items()
        }
        self._all = [ad for ads in self._by_category.values() for ad in ads]
        self._rng = random.Random(0)

    async def get_ads(self, context_keys: list[str]) -> list[Ad]:
        matched: list[Ad] = []
        for key in context_keys:
            matched.extend(self._by_category.get(key, ()))
        if matched:
            return matched
        return [self._rng.choice(self._all)]
