"""Currency component — port of the demo's currencyservice.

Conversion goes through EUR with the units/nanos carry arithmetic of the
original Node.js service, so converted amounts match the demo to the nano.
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, implements
from repro.boutique.data import CURRENCY_RATES
from repro.boutique.types import Money, NANOS_PER_UNIT, from_nanos


class UnsupportedCurrency(Exception):
    """The requested currency code has no conversion rate."""


class Currency(Component):
    @idempotent
    async def get_supported_currencies(self) -> list[str]: ...

    @idempotent
    async def convert(self, amount: Money, to_code: str) -> Money: ...


@implements(Currency)
class CurrencyImpl:
    def __init__(self) -> None:
        self._rates = dict(CURRENCY_RATES)

    async def get_supported_currencies(self) -> list[str]:
        return sorted(self._rates)

    async def convert(self, amount: Money, to_code: str) -> Money:
        from_rate = self._rate(amount.currency_code)
        to_rate = self._rate(to_code)
        if amount.currency_code == to_code:
            return amount
        # To EUR, then to the target, in integer nanos to avoid drift.
        total_nanos = amount.units * NANOS_PER_UNIT + amount.nanos
        euros_nanos = total_nanos / from_rate
        result_nanos = round(euros_nanos * to_rate)
        return from_nanos(to_code, result_nanos)

    def _rate(self, code: str) -> float:
        try:
            return self._rates[code]
        except KeyError:
            raise UnsupportedCurrency(f"no rate for currency {code!r}") from None
