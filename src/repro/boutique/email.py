"""Email component — port of the demo's emailservice.

Renders the order-confirmation message (the demo uses a Jinja template;
ours is a format string with the same fields) and records it in an
in-memory outbox instead of talking SMTP — the delivery side is exactly
the kind of external service §8.2 says need not be a component.
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, implements
from repro.boutique.types import OrderConfirmation, OrderResult


class Email(Component):
    async def send_order_confirmation(self, email: str, order: OrderResult) -> OrderConfirmation: ...

    @idempotent
    async def sent_count(self) -> int: ...


@implements(Email)
class EmailImpl:
    def __init__(self) -> None:
        self._outbox: list[OrderConfirmation] = []

    async def send_order_confirmation(self, email: str, order: OrderResult) -> OrderConfirmation:
        if "@" not in email:
            raise ValueError(f"invalid email address {email!r}")
        lines = [
            f"Your order {order.order_id} is confirmed!",
            f"It will ship as {order.shipping_tracking_id} to "
            f"{order.shipping_address.street_address}, {order.shipping_address.city}.",
            "Items:",
        ]
        for oi in order.items:
            lines.append(
                f"  - {oi.item.quantity} x {oi.item.product_id} @ "
                f"{oi.cost.units}.{oi.cost.nanos // 10_000_000:02d} {oi.cost.currency_code}"
            )
        shipping = order.shipping_cost
        lines.append(
            f"Shipping: {shipping.units}.{shipping.nanos // 10_000_000:02d} "
            f"{shipping.currency_code}"
        )
        confirmation = OrderConfirmation(email=email, order=order, body="\n".join(lines))
        self._outbox.append(confirmation)
        return confirmation

    async def sent_count(self) -> int:
        return len(self._outbox)
