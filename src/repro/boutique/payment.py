"""Payment component — port of the demo's paymentservice.

Validates the card with a real Luhn check, infers the network from the
prefix, rejects expired or unsupported cards, and mints a transaction id.
No external processor exists (nor does one in the demo, which also fakes
the charge); what matters for the evaluation is that the component does
plausible CPU work and returns a structured result.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.core.component import Component, implements
from repro.boutique.types import ChargeResult, CreditCard, Money, PaymentError


def luhn_valid(number: str) -> bool:
    digits = [int(c) for c in number if c.isdigit()]
    if len(digits) < 12 or not number.replace(" ", "").replace("-", "").isdigit():
        return False
    checksum = 0
    for i, d in enumerate(reversed(digits)):
        if i % 2 == 1:
            d *= 2
            if d > 9:
                d -= 9
        checksum += d
    return checksum % 10 == 0


def card_network(number: str) -> str:
    compact = number.replace(" ", "").replace("-", "")
    if compact.startswith("4"):
        return "visa"
    if compact[:2] in {"51", "52", "53", "54", "55"}:
        return "mastercard"
    if compact.startswith(("34", "37")):
        return "amex"
    return "unknown"


class Payment(Component):
    async def charge(self, amount: Money, card: CreditCard) -> ChargeResult: ...


@implements(Payment)
class PaymentImpl:
    ACCEPTED_NETWORKS = ("visa", "mastercard")

    def __init__(self) -> None:
        self._seq = itertools.count(1)
        self._charged: list[ChargeResult] = []

    async def charge(self, amount: Money, card: CreditCard) -> ChargeResult:
        compact = card.number.replace(" ", "").replace("-", "")
        if not luhn_valid(compact):
            raise PaymentError(f"invalid card number ending in {compact[-4:]}")
        network = card_network(compact)
        if network not in self.ACCEPTED_NETWORKS:
            raise PaymentError(f"{network} cards are not accepted")
        if not (1 <= card.expiration_month <= 12):
            raise PaymentError(f"invalid expiration month {card.expiration_month}")
        if (card.expiration_year, card.expiration_month) < (2026, 7):
            raise PaymentError(
                f"card expired {card.expiration_month}/{card.expiration_year}"
            )
        if amount.units < 0 or (amount.units == 0 and amount.nanos <= 0):
            raise PaymentError(f"charge amount must be positive, got {amount}")
        seq = next(self._seq)
        token = hashlib.sha1(f"{compact}|{seq}".encode()).hexdigest()[:16]
        result = ChargeResult(transaction_id=f"txn-{token}", amount=amount)
        self._charged.append(result)
        return result
