"""Checkout component — port of the demo's checkoutservice.

The orchestration heart of the application and the deepest call chain in
the graph: one ``place_order`` fans out to Cart, ProductCatalog, Currency,
Shipping, Payment, Email, and back to Cart — seven components, a dozen
calls.  Under the microservice baseline every one of those is a serialized
network hop; under the paper's runtime they are whatever placement makes
them.
"""

from __future__ import annotations

import hashlib
import itertools

from repro.core.component import Component, ComponentContext, implements
from repro.boutique.cart import Cart
from repro.boutique.catalog import ProductCatalog
from repro.boutique.currency import Currency
from repro.boutique.email import Email
from repro.boutique.payment import Payment
from repro.boutique.shipping import Shipping
from repro.boutique.types import (
    Address,
    CheckoutError,
    CreditCard,
    Money,
    OrderItem,
    OrderResult,
    zero,
)


class Checkout(Component):
    async def place_order(
        self,
        user_id: str,
        user_currency: str,
        address: Address,
        email: str,
        card: CreditCard,
    ) -> OrderResult: ...


@implements(Checkout)
class CheckoutImpl:
    async def init(self, ctx: ComponentContext) -> None:
        self._cart = ctx.get(Cart)
        # Pricing reads are idempotent and latency-sensitive: hedge a
        # second attempt if the first dawdles.
        self._catalog = ctx.get(ProductCatalog).with_options(hedge=0.15)
        self._currency = ctx.get(Currency).with_options(hedge=0.15)
        self._shipping = ctx.get(Shipping)
        # Payment.charge moves money.  It is not idempotent, so the
        # invoker would refuse to re-send it after an ambiguous failure
        # anyway; retries=0 also forgoes the provably-safe retries so a
        # checkout fails fast instead of queueing behind a sick replica.
        self._payment = ctx.get(Payment).with_options(retries=0)
        self._email = ctx.get(Email)
        self._seq = itertools.count(1)

    async def place_order(
        self,
        user_id: str,
        user_currency: str,
        address: Address,
        email: str,
        card: CreditCard,
    ) -> OrderResult:
        cart_items = await self._cart.get_cart(user_id)
        if not cart_items:
            raise CheckoutError(f"cart for user {user_id!r} is empty")

        # Price each line in the user's currency.
        order_items: list[OrderItem] = []
        total = zero(user_currency)
        for item in cart_items:
            product = await self._catalog.get_product(item.product_id)
            price = await self._currency.convert(product.price, user_currency)
            order_items.append(OrderItem(item=item, cost=price))
            total = total + price.multiply(item.quantity)

        # Shipping quote, converted as well.
        quote = await self._shipping.get_quote(address, cart_items)
        shipping_cost = await self._currency.convert(quote.cost, user_currency)
        total = total + shipping_cost

        charge = await self._payment.charge(total, card)

        tracking_id = await self._shipping.ship_order(address, cart_items)
        await self._cart.empty_cart(user_id)

        order_id = self._mint_order_id(user_id, charge.transaction_id)
        order = OrderResult(
            order_id=order_id,
            shipping_tracking_id=tracking_id,
            shipping_cost=shipping_cost,
            shipping_address=address,
            items=order_items,
        )
        await self._email.send_order_confirmation(email, order)
        return order

    def _mint_order_id(self, user_id: str, txn_id: str) -> str:
        seq = next(self._seq)
        digest = hashlib.sha1(f"{user_id}|{txn_id}|{seq}".encode()).hexdigest()
        return (
            f"{digest[:8]}-{digest[8:12]}-{digest[12:16]}-"
            f"{digest[16:20]}-{digest[20:32]}"
        )
