"""Static data of the Online Boutique: the product catalog and FX rates.

The products are the nine items of GoogleCloudPlatform's
``microservices-demo`` catalog; the conversion rates are the demo's
ECB-derived EUR-based table.  Keeping the data identical to the original
keeps payload sizes — and therefore serialization costs, the paper's main
effect — representative.
"""

from __future__ import annotations

from repro.boutique.types import Money, Product


def _p(pid: str, name: str, desc: str, pic: str, units: int, nanos: int, cats: list[str]) -> Product:
    return Product(pid, name, desc, pic, Money("USD", units, nanos), cats)


PRODUCTS: list[Product] = [
    _p(
        "OLJCESPC7Z",
        "Sunglasses",
        "Add a modern touch to your outfits with these sleek aviator sunglasses.",
        "/static/img/products/sunglasses.jpg",
        19,
        990_000_000,
        ["accessories"],
    ),
    _p(
        "66VCHSJNUP",
        "Tank Top",
        "Perfectly cropped cotton tank, with a scooped neckline.",
        "/static/img/products/tank-top.jpg",
        18,
        990_000_000,
        ["clothing", "tops"],
    ),
    _p(
        "1YMWWN1N4O",
        "Watch",
        "This gold-tone stainless steel watch will work with most of your outfits.",
        "/static/img/products/watch.jpg",
        109,
        990_000_000,
        ["accessories"],
    ),
    _p(
        "L9ECAV7KIM",
        "Loafers",
        "A neat addition to your summer wardrobe.",
        "/static/img/products/loafers.jpg",
        89,
        990_000_000,
        ["footwear"],
    ),
    _p(
        "2ZYFJ3GM2N",
        "Hairdryer",
        "This lightweight hairdryer has 3 heat and speed settings. It's perfect for travel.",
        "/static/img/products/hairdryer.jpg",
        24,
        990_000_000,
        ["hair", "beauty"],
    ),
    _p(
        "0PUK6V6EV0",
        "Candle Holder",
        "This small but intricate candle holder is an excellent gift.",
        "/static/img/products/candle-holder.jpg",
        18,
        990_000_000,
        ["decor", "home"],
    ),
    _p(
        "LS4PSXUNUM",
        "Salt & Pepper Shakers",
        "Add some flavor to your kitchen.",
        "/static/img/products/salt-and-pepper-shakers.jpg",
        18,
        490_000_000,
        ["kitchen"],
    ),
    _p(
        "9SIQT8TOJO",
        "Bamboo Glass Jar",
        "This bamboo glass jar can hold 57 oz (1.7 l) and is perfect for any kitchen.",
        "/static/img/products/bamboo-glass-jar.jpg",
        5,
        490_000_000,
        ["kitchen"],
    ),
    _p(
        "6E92ZMYYFZ",
        "Mug",
        "A simple mug with a mustard interior.",
        "/static/img/products/mug.jpg",
        8,
        990_000_000,
        ["kitchen"],
    ),
]

#: EUR-based conversion table from the demo's currencyservice.
CURRENCY_RATES: dict[str, float] = {
    "EUR": 1.0,
    "USD": 1.1305,
    "JPY": 126.40,
    "BGN": 1.9558,
    "CZK": 25.592,
    "DKK": 7.4609,
    "GBP": 0.85970,
    "HUF": 315.51,
    "PLN": 4.2996,
    "RON": 4.7463,
    "SEK": 10.5375,
    "CHF": 1.1360,
    "ISK": 136.80,
    "NOK": 9.8040,
    "HRK": 7.4210,
    "RUB": 74.4208,
    "TRY": 6.1247,
    "AUD": 1.6072,
    "BRL": 4.2682,
    "CAD": 1.5128,
    "CNY": 7.5857,
    "HKD": 8.8743,
    "IDR": 15999.40,
    "ILS": 4.0875,
    "INR": 79.4320,
    "KRW": 1275.05,
    "MXN": 21.7999,
    "MYR": 4.6289,
    "NZD": 1.6679,
    "PHP": 59.083,
    "SGD": 1.5349,
    "THB": 36.012,
    "ZAR": 15.9333,
}

#: Ads of the demo's adservice, keyed by category.
ADS_BY_CATEGORY: dict[str, list[tuple[str, str]]] = {
    "clothing": [("/product/66VCHSJNUP", "Tank top for sale. 20% off.")],
    "accessories": [("/product/1YMWWN1N4O", "Watch for sale. Buy one, get second kit for free")],
    "footwear": [("/product/L9ECAV7KIM", "Loafers for sale. Buy one, get second one for free")],
    "hair": [("/product/2ZYFJ3GM2N", "Hairdryer for sale. 50% off.")],
    "decor": [("/product/0PUK6V6EV0", "Candle holder for sale. 30% off.")],
    "kitchen": [
        ("/product/9SIQT8TOJO", "Bamboo glass jar for sale. 10% off."),
        ("/product/6E92ZMYYFZ", "Mug for sale. Buy two, get third one for free"),
    ],
}
