"""Frontend component — port of the demo's frontend service.

The HTTP-facing facade.  In the original it renders HTML; here each method
returns the structured data a page render needs, which is what the load
generator drives (the paper's Locust workload hits the frontend's routes).
Every method fans out to several components, making the frontend the
natural root of the call graph.
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, ComponentContext, implements
from repro.boutique.ads import Ads
from repro.boutique.cart import Cart
from repro.boutique.catalog import ProductCatalog
from repro.boutique.checkout import Checkout
from repro.boutique.currency import Currency
from repro.boutique.recommendation import Recommendation
from repro.boutique.types import (
    Ad,
    Address,
    CartItem,
    CreditCard,
    HomePage,
    Money,
    OrderResult,
    Product,
)


class Frontend(Component):
    @idempotent
    async def home(self, user_id: str, currency: str) -> HomePage: ...

    @idempotent
    async def browse_product(self, user_id: str, product_id: str, currency: str) -> Product: ...

    @idempotent
    async def view_cart(self, user_id: str, currency: str) -> list[CartItem]: ...

    async def add_to_cart(self, user_id: str, product_id: str, quantity: int) -> int: ...

    @idempotent
    async def get_recommendations(self, user_id: str, product_ids: list[str]) -> list[Product]: ...

    async def checkout(
        self,
        user_id: str,
        currency: str,
        address: Address,
        email: str,
        card: CreditCard,
    ) -> OrderResult: ...


@implements(Frontend)
class FrontendImpl:
    async def init(self, ctx: ComponentContext) -> None:
        self._catalog = ctx.get(ProductCatalog)
        self._cart = ctx.get(Cart)
        self._currency = ctx.get(Currency)
        # Page decorations: bound how long a render waits for them.
        self._recommendation = ctx.get(Recommendation).with_options(deadline_s=1.0)
        self._ads = ctx.get(Ads).with_options(deadline_s=1.0)
        # Checkout fans out to seven components; give the whole chain one
        # end-to-end budget and let the deadline shrink hop by hop.
        self._checkout = ctx.get(Checkout).with_options(deadline_s=10.0, retries=0)
        self._log = ctx.logger

    async def home(self, user_id: str, currency: str) -> HomePage:
        products = await self._catalog.list_products()
        converted = [
            Product(
                p.id,
                p.name,
                p.description,
                p.picture,
                await self._currency.convert(p.price, currency),
                p.categories,
            )
            for p in products
        ]
        cart = await self._cart.get_cart(user_id)
        ads = await self._ads.get_ads([])
        codes = await self._currency.get_supported_currencies()
        return HomePage(
            products=converted,
            cart_size=sum(i.quantity for i in cart),
            ad=ads[0],
            currency_codes=codes,
        )

    async def browse_product(self, user_id: str, product_id: str, currency: str) -> Product:
        product = await self._catalog.get_product(product_id)
        price = await self._currency.convert(product.price, currency)
        # The demo fetches recommendations and category ads on this page
        # too; the calls matter for the call-graph shape.
        await self._recommendation.list_recommendations(user_id, [product_id])
        await self._ads.get_ads(list(product.categories))
        return Product(
            product.id,
            product.name,
            product.description,
            product.picture,
            price,
            product.categories,
        )

    async def view_cart(self, user_id: str, currency: str) -> list[CartItem]:
        return await self._cart.get_cart(user_id)

    async def add_to_cart(self, user_id: str, product_id: str, quantity: int) -> int:
        product = await self._catalog.get_product(product_id)  # validates id
        await self._cart.add_item(user_id, CartItem(product.id, quantity))
        cart = await self._cart.get_cart(user_id)
        return sum(i.quantity for i in cart)

    async def get_recommendations(self, user_id: str, product_ids: list[str]) -> list[Product]:
        ids = await self._recommendation.list_recommendations(user_id, product_ids)
        return [await self._catalog.get_product(pid) for pid in ids]

    async def checkout(
        self,
        user_id: str,
        currency: str,
        address: Address,
        email: str,
        card: CreditCard,
    ) -> OrderResult:
        order = await self._checkout.place_order(user_id, currency, address, email, card)
        self._log.info(
            "order placed", user=user_id, order_id=order.order_id, items=len(order.items)
        )
        return order
