"""Shipping component — port of the demo's shippingservice.

The quote formula is the demo's: a flat fee per shipment plus a per-item
count factor (the original Go service quotes $8.99 regardless; we keep a
deterministic per-item component so quotes exercise Money arithmetic).
Tracking ids follow the demo's pattern of base-36 chunks derived from the
address, so they are deterministic for tests.
"""

from __future__ import annotations

import hashlib

from repro.codegen.compiler import idempotent
from repro.core.component import Component, implements
from repro.boutique.types import Address, CartItem, Money, ShipQuote


class Shipping(Component):
    @idempotent
    async def get_quote(self, address: Address, items: list[CartItem]) -> ShipQuote: ...

    async def ship_order(self, address: Address, items: list[CartItem]) -> str: ...


@implements(Shipping)
class ShippingImpl:
    FLAT_FEE = Money("USD", 8, 990_000_000)

    async def get_quote(self, address: Address, items: list[CartItem]) -> ShipQuote:
        count = sum(i.quantity for i in items)
        cost = self.FLAT_FEE
        # Bulk shipments: +$0.50 per item beyond the fifth.
        extra = max(0, count - 5)
        if extra:
            cost = cost + Money("USD", 0, 500_000_000).multiply(extra)
        eta = 3 if count <= 5 else 5
        return ShipQuote(cost=cost, tracking_eta_days=eta)

    async def ship_order(self, address: Address, items: list[CartItem]) -> str:
        seed = f"{address.street_address}|{address.city}|{len(items)}"
        digest = hashlib.sha1(seed.encode()).hexdigest()

        def chunk(offset: int, n: int) -> str:
            return str(int(digest[offset : offset + 8], 16) % 36**n).zfill(n)

        return f"{address.city[:2].upper()}-{chunk(0, 5)}-{chunk(8, 9)}"
