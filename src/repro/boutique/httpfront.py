"""An HTTP front door for the boutique — what Locust actually talks to.

The paper's evaluation drives "a steady rate of HTTP requests" at the
application (§6.1).  Components are not HTTP; the frontend *component*
returns structured data.  This module is the thin edge tier that turns
browser-shaped requests into component calls, against any deployment
(single-process, multiprocess, or the microservice baseline — anything
with ``get(Frontend)``):

    GET  /                         home page (JSON render)
    GET  /product/<id>             product page
    GET  /cart                     view cart
    POST /cart                     add item           {product_id, quantity}
    POST /cart/checkout            place order        {currency, email, ...}
    GET  /_healthz                 liveness

Run it via :func:`serve` or the CLI; tests drive it with a raw client.
Responses are JSON (the original renders HTML; the data is the same).
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro.boutique.frontend import Frontend
from repro.boutique.types import Address, CreditCard, HomePage, Money
from repro.core.errors import WeaverError
from repro.transport.http_rpc import _read_http_message
from repro.transport.server import parse_address

DEFAULT_USER = "guest"


def _money(m: Money) -> dict[str, Any]:
    return {"currency": m.currency_code, "units": m.units, "nanos": m.nanos}


class BoutiqueHttpServer:
    """Minimal HTTP/1.1 JSON facade over the Frontend component."""

    def __init__(self, app: Any, *, address: str = "tcp://127.0.0.1:0") -> None:
        self._frontend: Frontend = app.get(Frontend)
        self._requested = address
        self._server: Optional[asyncio.base_events.Server] = None
        self.address: str = address
        self.requests_served = 0

    async def start(self) -> str:
        _, host, port = parse_address(self._requested)
        self._server = await asyncio.start_server(self._serve, host, port)
        bound = self._server.sockets[0].getsockname()
        self.address = f"tcp://{bound[0]}:{bound[1]}"
        return self.address

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _serve(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                message = await _read_http_message(reader, request_side=True)
                if message is None:
                    break
                method, target, headers, body = message
                status, payload = await self._route(method, target, headers, body)
                data = json.dumps(payload).encode()
                head = (
                    f"HTTP/1.1 {status} {'OK' if status == 200 else 'Error'}\r\n"
                    f"content-type: application/json\r\n"
                    f"content-length: {len(data)}\r\n"
                    "connection: keep-alive\r\n\r\n"
                ).encode()
                writer.write(head + data)
                await writer.drain()
                self.requests_served += 1
        except (ConnectionError, OSError, asyncio.IncompleteReadError, Exception):
            pass
        finally:
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _route(
        self, method: str, target: str, headers: dict[str, str], body: bytes
    ) -> tuple[int, Any]:
        split = urlsplit(target)
        path = split.path
        query = parse_qs(split.query)
        user = query.get("user", [headers.get("x-user", DEFAULT_USER)])[0]
        currency = query.get("currency", ["USD"])[0]
        try:
            if method == "GET" and path == "/_healthz":
                return 200, {"status": "serving"}
            if method == "GET" and path == "/":
                return 200, self._render_home(await self._frontend.home(user, currency))
            if method == "GET" and path.startswith("/product/"):
                product_id = path[len("/product/") :]
                product = await self._frontend.browse_product(user, product_id, currency)
                return 200, {
                    "id": product.id,
                    "name": product.name,
                    "description": product.description,
                    "price": _money(product.price),
                    "categories": list(product.categories),
                }
            if method == "GET" and path == "/cart":
                items = await self._frontend.view_cart(user, currency)
                return 200, {
                    "items": [
                        {"product_id": i.product_id, "quantity": i.quantity} for i in items
                    ]
                }
            if method == "POST" and path == "/cart":
                form = json.loads(body or b"{}")
                total = await self._frontend.add_to_cart(
                    user, form["product_id"], int(form.get("quantity", 1))
                )
                return 200, {"cart_size": total}
            if method == "POST" and path == "/cart/checkout":
                form = json.loads(body or b"{}")
                order = await self._frontend.checkout(
                    user,
                    form.get("currency", currency),
                    Address(
                        form.get("street_address", "1600 Amphitheatre Pkwy"),
                        form.get("city", "Mountain View"),
                        form.get("state", "CA"),
                        form.get("country", "US"),
                        int(form.get("zip_code", 94043)),
                    ),
                    form.get("email", f"{user}@example.com"),
                    CreditCard(
                        form.get("credit_card_number", "4432-8015-6152-0454"),
                        int(form.get("credit_card_cvv", 672)),
                        int(form.get("credit_card_expiration_year", 2030)),
                        int(form.get("credit_card_expiration_month", 1)),
                    ),
                )
                return 200, {
                    "order_id": order.order_id,
                    "tracking_id": order.shipping_tracking_id,
                    "shipping_cost": _money(order.shipping_cost),
                    "total": _money(order.total(form.get("currency", currency))),
                    "items": len(order.items),
                }
            return 404, {"error": f"no route {method} {path}"}
        except (ValueError, KeyError) as exc:
            return 400, {"error": f"{type(exc).__name__}: {exc}"}
        except WeaverError as exc:
            return 503, {"error": str(exc)}
        except Exception as exc:
            return 500, {"error": f"{type(exc).__name__}: {exc}"}

    def _render_home(self, home: HomePage) -> dict[str, Any]:
        return {
            "products": [
                {"id": p.id, "name": p.name, "price": _money(p.price)}
                for p in home.products
            ],
            "cart_size": home.cart_size,
            "ad": {"text": home.ad.text, "redirect_url": home.ad.redirect_url},
            "currencies": home.currency_codes,
        }


async def serve(app: Any, *, address: str = "tcp://127.0.0.1:0") -> BoutiqueHttpServer:
    """Start the front door against a deployment and return the server."""
    server = BoutiqueHttpServer(app, address=address)
    await server.start()
    return server
