"""Cart component — port of the demo's cartservice.

Thin domain logic over :class:`~repro.boutique.cartstore.CartStore`; the
split mirrors the original cartservice-plus-Redis pair and gives the
placement engine a genuinely chatty component pair to discover (§5.1).
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, ComponentContext, implements
from repro.boutique.cartstore import CartStore
from repro.boutique.types import CartItem


class Cart(Component):
    async def add_item(self, user_id: str, item: CartItem) -> None: ...

    @idempotent
    async def get_cart(self, user_id: str) -> list[CartItem]: ...

    @idempotent
    async def empty_cart(self, user_id: str) -> None: ...


@implements(Cart)
class CartImpl:
    async def init(self, ctx: ComponentContext) -> None:
        self._store = ctx.get(CartStore)

    async def add_item(self, user_id: str, item: CartItem) -> None:
        if not user_id:
            raise ValueError("user_id must be non-empty")
        await self._store.add(user_id, item)

    async def get_cart(self, user_id: str) -> list[CartItem]:
        return await self._store.get(user_id)

    async def empty_cart(self, user_id: str) -> None:
        await self._store.clear(user_id)
