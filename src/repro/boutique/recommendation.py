"""Recommendation component — port of the demo's recommendationservice.

Like the Python original: fetch the catalog, filter out the products the
user is already looking at, and return up to five of the rest (the demo
samples randomly; we rotate deterministically per user so tests and
benchmarks are reproducible while different users still see different
sets).
"""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, ComponentContext, implements
from repro.boutique.catalog import ProductCatalog
from repro.runtime.routing import key_hash


class Recommendation(Component):
    @idempotent
    async def list_recommendations(
        self, user_id: str, product_ids: list[str]
    ) -> list[str]: ...


@implements(Recommendation)
class RecommendationImpl:
    MAX_RESULTS = 5

    async def init(self, ctx: ComponentContext) -> None:
        self._catalog = ctx.get(ProductCatalog)

    async def list_recommendations(
        self, user_id: str, product_ids: list[str]
    ) -> list[str]:
        products = await self._catalog.list_products()
        exclude = set(product_ids)
        candidates = [p.id for p in products if p.id not in exclude]
        if not candidates:
            return []
        offset = key_hash(user_id) % len(candidates)
        rotated = candidates[offset:] + candidates[:offset]
        return rotated[: self.MAX_RESULTS]
