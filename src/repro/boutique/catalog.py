"""ProductCatalog component — port of the demo's productcatalogservice."""

from __future__ import annotations

from repro.codegen.compiler import idempotent
from repro.core.component import Component, implements
from repro.boutique.data import PRODUCTS
from repro.boutique.types import Product


class ProductNotFound(Exception):
    """The requested product id is not in the catalog."""


class ProductCatalog(Component):
    """Read-only catalog of everything the boutique sells."""

    @idempotent
    async def list_products(self) -> list[Product]: ...

    @idempotent
    async def get_product(self, product_id: str) -> Product: ...

    @idempotent
    async def search_products(self, query: str) -> list[Product]: ...


@implements(ProductCatalog)
class ProductCatalogImpl:
    def __init__(self) -> None:
        self._products = list(PRODUCTS)
        self._by_id = {p.id: p for p in self._products}

    async def list_products(self) -> list[Product]:
        return list(self._products)

    async def get_product(self, product_id: str) -> Product:
        try:
            return self._by_id[product_id]
        except KeyError:
            raise ProductNotFound(f"no product with id {product_id!r}") from None

    async def search_products(self, query: str) -> list[Product]:
        needle = query.lower()
        return [
            p
            for p in self._products
            if needle in p.name.lower() or needle in p.description.lower()
        ]
