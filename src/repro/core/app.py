"""The application facade: ``init`` and ``get`` (Figure 2).

The paper's Hello-World is three lines: ``app := Init()``,
``hello := Get[Hello](app)``, ``hello.Greet(...)``.  The Python mirror::

    app = await repro.init()
    hello = app.get(Hello)
    print(await hello.greet("World"))

:func:`init` builds the *single-process* deployment — every component
co-located, calls local — which is both the development default and the
co-location end point of the paper's evaluation.  Multiprocess and
simulated-cloud deployments are built by the deployers in
:mod:`repro.runtime.deployers`, all of which return objects satisfying the
same :class:`Application` surface.
"""

from __future__ import annotations

import asyncio
from typing import Any, Optional, TypeVar

from repro.core.call_graph import CallGraph, ROOT
from repro.core.component import Component, shutdown_instance
from repro.core.config import AppConfig
from repro.core.registry import FrozenRegistry, Registry, global_registry
from repro.core.stub import LocalInvoker, make_stub

T = TypeVar("T", bound=Component)


class Application:
    """A running deployment: the handle returned by every deployer."""

    def __init__(self, build: FrozenRegistry, config: AppConfig) -> None:
        self.build = build
        self.config = config
        self.call_graph = CallGraph()

    @property
    def version(self) -> str:
        return self.build.version

    def get(self, iface: type[T]) -> T:
        """Return a stub for ``iface`` (Figure 2's ``Get[T]``)."""
        raise NotImplementedError

    async def shutdown(self) -> None:
        """Stop every component and release deployment resources."""
        raise NotImplementedError

    async def __aenter__(self) -> "Application":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.shutdown()


class SingleProcessApp(Application):
    """All components in one OS process; every call is a local call."""

    def __init__(self, build: FrozenRegistry, config: AppConfig) -> None:
        super().__init__(build, config)
        self._invoker = LocalInvoker(
            version=build.version,
            call_graph=self.call_graph,
            resolver=self,
            settings=config.settings,
        )

    def get(self, iface: type[T]) -> T:
        return self.get_for(iface, ROOT)

    def get_for(self, iface: type, caller: str) -> Any:
        reg = self.build.by_iface(iface)
        return make_stub(reg, self._invoker, caller)

    async def shutdown(self) -> None:
        for instance in self._invoker.instances().values():
            await shutdown_instance(instance)


async def init(
    config: Optional[AppConfig] = None,
    *,
    components: Optional[list[type]] = None,
    registry: Optional[Registry] = None,
) -> SingleProcessApp:
    """Initialize a single-process application (Figure 2's ``Init``).

    ``components`` restricts the deployment to the listed interfaces plus
    whatever they resolve at runtime; by default every registered component
    is deployed.  ``registry`` defaults to the global one that
    ``@implements`` populates.
    """
    config = config or AppConfig()
    reg = registry or global_registry()
    build = reg.freeze(components=components)
    return SingleProcessApp(build, config)


def run(main, *, config: Optional[AppConfig] = None) -> Any:
    """Synchronous convenience: init, run ``main(app)``, shut down.

    The equivalent of the Go prototype's ``weaver.Run``.  ``main`` is an
    async callable receiving the application.
    """

    async def body() -> Any:
        app = await init(config)
        try:
            return await main(app)
        finally:
            await app.shutdown()

    return asyncio.run(body())
