"""Component stubs: the call-site illusion of a plain method call (§3.2).

``app.get(Hello)`` returns a *stub* — an object with the interface's
methods.  Invoking a stub method delegates to an :class:`Invoker`, which is
where the local/remote decision lives:

* :class:`LocalInvoker` calls a co-located instance directly.  No
  serialization is touched — the paper is explicit that co-located calls
  remain plain procedure calls.
* The remote invoker (in :mod:`repro.runtime.proclet`) marshals arguments
  with the deployment codec, picks a replica (possibly by routing key), and
  performs the RPC.

Both record observations into the deployment's :class:`~repro.core.call_graph.CallGraph`
so the runtime can make placement and scaling decisions (§5.1).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any, Optional, Protocol

from repro.codegen.compiler import MethodSpec
from repro.core.call_graph import CallGraph, ROOT
from repro.core.component import ComponentContext, instantiate
from repro.core.errors import DeadlineExceeded, RegistrationError
from repro.core.options import CallOptions
from repro.core.registry import Registration


class Invoker(Protocol):
    """The pluggable execution strategy behind a stub."""

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Optional[CallOptions] = None,
    ) -> Any:
        ...


class Stub:
    """Base class for generated stubs; carries identity for diagnostics."""

    _repro_registration: Registration
    _repro_caller: str
    _repro_options: Optional[CallOptions] = None

    def with_options(self, **overrides: Any) -> "Stub":
        """A derived stub whose calls carry the given :class:`CallOptions`.

        The canonical per-call override surface::

            payment = ctx.get(Payment).with_options(deadline_s=0.5, retries=0)
            catalog = ctx.get(ProductCatalog).with_options(hedge=0.05)

        Returns a cheap clone; the original stub is unchanged.  Repeated
        calls layer: unset fields inherit from the stub being derived from.
        """
        base = self._repro_options or CallOptions()
        clone = type(self)()
        clone._repro_registration = self._repro_registration
        clone._repro_caller = self._repro_caller
        clone._repro_invoker = self._repro_invoker
        clone._repro_options = base.replace(**overrides)
        return clone

    def __repr__(self) -> str:
        opts = f" options={self._repro_options}" if self._repro_options else ""
        return (
            f"<stub for {self._repro_registration.name} "
            f"(caller={self._repro_caller}){opts}>"
        )


_stub_classes: dict[type, type] = {}


def make_stub(reg: Registration, invoker: Invoker, caller: str = ROOT) -> Any:
    """Create a stub instance for ``reg`` whose calls go through ``invoker``.

    Stub classes are generated once per interface and cached; instances are
    cheap (two attribute writes), so deployers can mint one per caller for
    correct call-graph attribution.
    """
    cls = _stub_classes.get(reg.iface)
    if cls is None:
        cls = _build_stub_class(reg)
        _stub_classes[reg.iface] = cls
    stub = cls()
    stub._repro_registration = reg
    stub._repro_caller = caller
    stub._repro_invoker = invoker
    return stub


def _build_stub_class(reg: Registration) -> type:
    namespace: dict[str, Any] = {}
    for spec in reg.spec.methods:
        namespace[spec.name] = _make_stub_method(spec)
    return type(f"{reg.iface.__name__}Stub", (Stub,), namespace)


def _make_stub_method(spec: MethodSpec):
    arg_names = spec.arg_names

    async def stub_method(self: Stub, *args: Any, **kwargs: Any) -> Any:
        if kwargs:
            # Normalize keyword arguments into positional order; the wire
            # format carries positions, not names.
            merged = list(args)
            for name in arg_names[len(args):]:
                if name in kwargs:
                    merged.append(kwargs.pop(name))
                else:
                    raise TypeError(
                        f"{spec.name}() missing required argument {name!r}"
                    )
            if kwargs:
                raise TypeError(
                    f"{spec.name}() got unexpected keyword arguments "
                    f"{sorted(kwargs)}"
                )
            args = tuple(merged)
        if len(args) != len(arg_names):
            raise TypeError(
                f"{spec.name}() takes {len(arg_names)} arguments "
                f"({', '.join(arg_names)}), got {len(args)}"
            )
        return await self._repro_invoker.invoke(
            self._repro_registration,
            spec,
            args,
            self._repro_caller,
            options=self._repro_options,
        )

    stub_method.__name__ = spec.name
    stub_method.__qualname__ = f"stub.{spec.name}"
    return stub_method


class LocalInvoker:
    """Runs components in-process: plain method calls, no serialization.

    Owns the lazy instantiation of component singletons (one replica per
    process, as in the paper's co-located case) and wires their contexts so
    nested ``ctx.get`` calls resolve through ``resolver``.
    """

    def __init__(
        self,
        *,
        version: str,
        call_graph: Optional[CallGraph] = None,
        resolver: Optional[Any] = None,
        settings: Optional[dict[str, Any]] = None,
        logger_factory: Optional[Any] = None,
        replica_id: int = 0,
        tracer: Optional[Any] = None,
        advisor: Optional[Any] = None,
        state_factory: Optional[Any] = None,
    ) -> None:
        self.version = version
        self.call_graph = call_graph
        self._resolver = resolver  # object with get_for(iface, caller)
        self._settings = settings or {}
        self._logger_factory = logger_factory  # (component, replica_id) -> logger
        self._replica_id = replica_id
        self._tracer = tracer
        self._advisor = advisor
        #: (component_name) -> ComponentState; a proclet passes its
        #: StateRuntime's factory, other deployers get an ephemeral default.
        self._state_factory = state_factory
        self._instances: dict[str, Any] = {}
        self._locks: dict[str, asyncio.Lock] = {}
        #: Optional repro.testing.faults.FaultPlan, consulted per call.
        #: An attribute (not a wrapper) so already-minted stubs see it.
        self.fault_plan: Optional[Any] = None

    def set_resolver(self, resolver: Any) -> None:
        self._resolver = resolver

    def _component_state(self, name: str) -> Any:
        if self._state_factory is None:
            # No proclet behind us (single-process deployer, bare tests):
            # hand out memory-only state so ctx.state always works.
            from repro.state import StateRuntime

            runtime = StateRuntime(f"local-{self._replica_id}")
            self._state_factory = runtime.component_state
        return self._state_factory(name)

    async def instance(self, reg: Registration) -> Any:
        inst = self._instances.get(reg.name)
        if inst is not None:
            return inst
        lock = self._locks.setdefault(reg.name, asyncio.Lock())
        async with lock:
            inst = self._instances.get(reg.name)
            if inst is None:
                ctx = ComponentContext(
                    component=reg.name,
                    replica_id=self._replica_id,
                    version=self.version,
                    getter=self._getter_for(reg.name),
                    config=self._settings,
                    state=self._component_state(reg.name),
                )
                if self._logger_factory is not None:
                    ctx.logger = self._logger_factory(reg.name, self._replica_id)
                inst = await instantiate(reg.impl, ctx)
                self._instances[reg.name] = inst
        return inst

    def _getter_for(self, caller: str):
        def get(iface: type) -> Any:
            if self._resolver is None:
                raise RegistrationError(
                    "component context has no resolver; was the application "
                    "initialized through a deployer?"
                )
            return self._resolver.get_for(iface, caller)

        return get

    async def invoke(
        self,
        reg: Registration,
        method: MethodSpec,
        args: tuple,
        caller: str,
        *,
        options: Optional[CallOptions] = None,
    ) -> Any:
        if self.fault_plan is not None:
            await self.fault_plan.before_call(reg, method)
        if self._advisor is not None:
            self._advisor.observe(
                reg.name,
                method.name,
                method.arg_names,
                args,
                already_routed=method.routing_key is not None,
            )
        inst = self._instances.get(reg.name)
        if inst is None:
            inst = await self.instance(reg)
        fn = getattr(inst, method.name)

        deadline_s = options.deadline_s if options is not None else None
        tracer = self._tracer
        start = time.perf_counter()
        error = False
        try:
            # Co-located calls stay plain procedure calls (§3.2) — no
            # retries or hedging — but an explicit deadline is still honored.
            if (tracer is None or caller == "<remote>") and deadline_s is None:
                # The common case: nothing to wrap, so don't pay for a
                # closure and an extra coroutine frame per call.
                return await fn(*args)

            async def run() -> Any:
                # Remote-originated invocations are already wrapped in a
                # server-side span with identical name and timing by the
                # RPC dispatcher; a second "local" span would double every
                # remote call's span volume for no information.
                if tracer is not None and caller != "<remote>":
                    with tracer.start_span(
                        f"{reg.name.rsplit('.', 1)[-1]}.{method.name}",
                        side="local",
                        caller=caller,
                    ):
                        return await fn(*args)
                return await fn(*args)

            if deadline_s is None:
                return await run()
            try:
                return await asyncio.wait_for(run(), deadline_s)
            except asyncio.TimeoutError:
                raise DeadlineExceeded(
                    f"{reg.name}.{method.name} exceeded its "
                    f"{deadline_s:g}s deadline (local call)"
                ) from None
        except Exception:
            error = True
            raise
        finally:
            if self.call_graph is not None:
                self.call_graph.record(
                    caller,
                    reg.name,
                    method.name,
                    latency_s=time.perf_counter() - start,
                    local=True,
                    error=error,
                )

    def instances(self) -> dict[str, Any]:
        """Live instances, for lifecycle management and tests."""
        return dict(self._instances)

    async def discard_instance(self, name: str) -> None:
        """Shut down and forget one instance (component moved elsewhere)."""
        from repro.core.component import shutdown_instance

        inst = self._instances.pop(name, None)
        if inst is not None:
            await shutdown_instance(inst)
