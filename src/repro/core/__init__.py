"""Core programming model: components, stubs, configuration, call graph."""

from repro.codegen.compiler import idempotent, routed
from repro.core.app import Application, SingleProcessApp, init, run
from repro.core.call_graph import ROOT, CallGraph, EdgeStats
from repro.core.component import Component, ComponentContext, component_name, implements
from repro.core.config import AppConfig, AutoscaleConfig, RolloutConfig
from repro.core.errors import (
    ComponentNotFound,
    ConfigError,
    DeadlineExceeded,
    DecodeError,
    EncodeError,
    ErrorCode,
    RegistrationError,
    RemoteApplicationError,
    ResourceExhausted,
    RolloutError,
    RPCError,
    SchemaError,
    TransportError,
    Unavailable,
    VersionMismatch,
    WeaverError,
)
from repro.core.options import CallOptions
from repro.core.registry import FrozenRegistry, Registration, Registry, global_registry

__all__ = [
    "Application",
    "SingleProcessApp",
    "init",
    "run",
    "routed",
    "idempotent",
    "CallOptions",
    "ROOT",
    "CallGraph",
    "EdgeStats",
    "Component",
    "ComponentContext",
    "component_name",
    "implements",
    "AppConfig",
    "AutoscaleConfig",
    "RolloutConfig",
    "FrozenRegistry",
    "Registration",
    "Registry",
    "global_registry",
    "WeaverError",
    "RegistrationError",
    "ComponentNotFound",
    "ConfigError",
    "SchemaError",
    "EncodeError",
    "DecodeError",
    "VersionMismatch",
    "TransportError",
    "RPCError",
    "ErrorCode",
    "RemoteApplicationError",
    "DeadlineExceeded",
    "ResourceExhausted",
    "Unavailable",
    "RolloutError",
]
