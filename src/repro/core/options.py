"""Per-call resilience options: the single override surface for RPC policy.

The paper argues the runtime, not the developer, should own distributed
concerns (§3, §5.3) — but callers still need a small, declarative way to
*parameterize* the runtime's policy per call site.  :class:`CallOptions` is
that surface.  It replaces the scattered constructor knobs (``RPCClient``'s
``timeout_s``, per-deployment ``max_retries``) with one value type that
flows ``stub → invoker → rpc → wire``::

    payment = ctx.get(Payment).with_options(deadline_s=0.5, retries=0)
    catalog = ctx.get(ProductCatalog).with_options(hedge=0.05)

Deadlines are *budgets*, not per-hop timeouts.  The root caller's budget is
carried on the wire (``deadline_ms`` in the framed transport,
``X-Repro-Deadline`` over HTTP), decremented at every hop, and enforced
both client-side and at the server door, so a chain of calls can never
outlive the root deadline.  In-process the remaining budget travels as an
ambient :mod:`contextvars` value, which asyncio propagates across task
boundaries for free.
"""

from __future__ import annotations

import contextlib
import contextvars
import dataclasses
import random
import time
from typing import Any, Iterator, Optional

from repro.core.errors import ConfigError

_OPTION_FIELDS = ("deadline_s", "retries", "hedge_after_s", "route_key")
#: Ergonomic aliases accepted by ``with_options``/``replace``.
_OPTION_ALIASES = {"hedge": "hedge_after_s", "timeout_s": "deadline_s"}


@dataclasses.dataclass(frozen=True)
class CallOptions:
    """Immutable per-call overrides; ``None`` means "use deployment default".

    * ``deadline_s`` — end-to-end budget for the call, including all retries
      and all downstream hops.
    * ``retries`` — max retry attempts after the first (0 disables retries;
      non-idempotent methods are only ever retried when the failure provably
      happened before execution).
    * ``hedge_after_s`` — if set and the method is idempotent, race a second
      attempt after this many seconds without a response; first result wins.
    * ``route_key`` — explicit affinity-routing key, overriding the
      ``@routed(by=...)`` argument extraction.
    """

    deadline_s: Optional[float] = None
    retries: Optional[int] = None
    hedge_after_s: Optional[float] = None
    route_key: Optional[Any] = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ConfigError(f"deadline_s must be positive, got {self.deadline_s}")
        if self.retries is not None and self.retries < 0:
            raise ConfigError(f"retries must be >= 0, got {self.retries}")
        if self.hedge_after_s is not None and self.hedge_after_s < 0:
            raise ConfigError(
                f"hedge_after_s must be >= 0, got {self.hedge_after_s}"
            )

    def replace(self, **overrides: Any) -> "CallOptions":
        """A copy with the given fields overridden; unset fields survive."""
        fields = {f: getattr(self, f) for f in _OPTION_FIELDS}
        for key, value in overrides.items():
            key = _OPTION_ALIASES.get(key, key)
            if key not in fields:
                raise ConfigError(
                    f"unknown call option {key!r} (valid: "
                    f"{', '.join(_OPTION_FIELDS)})"
                )
            fields[key] = value
        return CallOptions(**fields)


#: The empty options value; invokers treat ``None`` and this identically.
DEFAULT_OPTIONS = CallOptions()


# ---------------------------------------------------------------------------
# Ambient deadline: the remaining budget of the request being served.
# ---------------------------------------------------------------------------

_deadline_var: contextvars.ContextVar[Optional[float]] = contextvars.ContextVar(
    "repro_call_deadline", default=None
)


def current_deadline() -> Optional[float]:
    """The ambient absolute deadline (``time.monotonic()`` scale), if any."""
    return _deadline_var.get()


def remaining_budget_s() -> Optional[float]:
    """Seconds left on the ambient deadline, or ``None`` if unconstrained.

    May be zero or negative once the budget is spent.
    """
    deadline = _deadline_var.get()
    if deadline is None:
        return None
    return deadline - time.monotonic()


@contextlib.contextmanager
def deadline_scope(deadline: Optional[float]) -> Iterator[None]:
    """Run a block under an absolute deadline; deadlines only ever shrink.

    A server sets this around each handler invocation so every outgoing
    call the handler makes inherits the remaining budget.  A scope can
    never *extend* an enclosing deadline.
    """
    current = _deadline_var.get()
    if deadline is None or (current is not None and current <= deadline):
        yield
        return
    token = _deadline_var.set(deadline)
    try:
        yield
    finally:
        _deadline_var.reset(token)


def effective_budget_s(explicit: Optional[float], default: float) -> float:
    """Budget for an outgoing call: explicit/default, capped by the ambient
    deadline.  May be <= 0, which means the call must fail immediately."""
    budget = default if explicit is None else explicit
    ambient = remaining_budget_s()
    if ambient is not None and ambient < budget:
        budget = ambient
    return budget


def budget_to_wire_ms(budget_s: float) -> int:
    """Encode a positive remaining budget for the wire (0 = no deadline).

    Rounds up to 1ms so a nearly-spent budget still reads as "has a
    deadline" on the server side rather than silently becoming unlimited.
    """
    if budget_s <= 0:
        return 1
    return max(1, int(budget_s * 1000))


# ---------------------------------------------------------------------------
# Retry backoff: decorrelated jitter (Brooker), capped.
# ---------------------------------------------------------------------------

_backoff_rng = random.Random()


def decorrelated_jitter(
    prev_s: float,
    *,
    base_s: float,
    cap_s: float,
    rng: Optional[random.Random] = None,
) -> float:
    """Next sleep in a decorrelated-jitter sequence.

    ``sleep = min(cap, uniform(base, prev * 3))`` — grows roughly
    geometrically but never synchronizes across clients, so a failed
    replica coming back is not greeted by a retry storm.
    """
    r = rng or _backoff_rng
    return min(cap_s, r.uniform(base_s, max(base_s, prev_s * 3)))
