"""The component abstraction — the paper's key programming-model idea (§3).

A component is a long-lived, replicated computational agent.  Developers
declare an *interface* (a subclass of :class:`Component` whose async methods
define the callable surface) and an *implementation* (a plain class marked
with :func:`implements`, the Python analogue of Go's ``Implements[T]``
embedding)::

    class Hello(Component):
        async def greet(self, name: str) -> str: ...

    @implements(Hello)
    class HelloImpl:
        async def greet(self, name: str) -> str:
            return f"Hello, {name}!"

Callers never construct implementations; they obtain a *stub* from the
runtime (``app.get(Hello)``) and invoke interface methods on it.  Whether an
invocation is a local call or an RPC is the runtime's decision, invisible at
the call site.

Implementations may define two optional lifecycle hooks::

    async def init(self, ctx) -> None     # after construction, before traffic
    async def shutdown(self) -> None      # before the replica is stopped

``ctx`` is a :class:`ComponentContext`; through it a component reaches the
stubs of other components, its replica identity, and its logger.
"""

from __future__ import annotations

import inspect
import logging
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, TYPE_CHECKING, TypeVar

from repro.core.errors import RegistrationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.codegen.compiler import InterfaceSpec

T = TypeVar("T", bound="Component")

#: Attribute stored on implementation classes by @implements.
IMPLEMENTS_ATTR = "_repro_implements"


class Component:
    """Base class for component interfaces.

    Subclass it and declare async methods with full type annotations; the
    bodies are irrelevant (conventionally ``...``).  Do not subclass it for
    implementations — mark those with :func:`implements` instead.
    """

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        # Interfaces must not carry state or constructors: they are pure
        # contracts.  Catch the classic mistake of merging interface and
        # implementation early, with a clear message.
        if "__init__" in vars(cls):
            raise RegistrationError(
                f"component interface {cls.__name__!r} defines __init__; "
                "interfaces are pure contracts — put state in the "
                "implementation class and mark it with @implements"
            )


def component_name(iface: type) -> str:
    """The fully qualified, deployment-stable name of an interface."""
    return f"{iface.__module__}.{iface.__qualname__}"


def implements(iface: type) -> Callable[[type], type]:
    """Class decorator marking an implementation of component ``iface``.

    The analogue of embedding ``Implements[Hello]`` in the Go prototype
    (Figure 2).  Verifies at decoration time that the implementation
    defines every interface method with a compatible signature — the
    errors a compiled language would catch at build time should not wait
    until a call fails at runtime.
    """
    if not (isinstance(iface, type) and issubclass(iface, Component)):
        raise RegistrationError(
            f"@implements argument must be a Component interface, got {iface!r}"
        )
    if iface is Component:
        raise RegistrationError("cannot implement the Component base class itself")

    def register(impl: type) -> type:
        _check_implementation(iface, impl)
        setattr(impl, IMPLEMENTS_ATTR, iface)
        # Registration in the global registry happens lazily via
        # repro.core.registry.registry().discover(), and eagerly here for
        # the common case.
        from repro.core.registry import global_registry

        global_registry().register(iface, impl)
        return impl

    return register


def _check_implementation(iface: type, impl: type) -> None:
    if isinstance(impl, type) and issubclass(impl, Component):
        raise RegistrationError(
            f"implementation {impl.__name__!r} must not subclass Component; "
            "subclassing is for interfaces, @implements is for implementations"
        )
    for attr, decl in vars(iface).items():
        if attr.startswith("_") or not inspect.isfunction(decl):
            continue
        got = getattr(impl, attr, None)
        if got is None:
            raise RegistrationError(
                f"{impl.__name__} does not implement {iface.__name__}.{attr}"
            )
        if not inspect.iscoroutinefunction(got):
            raise RegistrationError(
                f"{impl.__name__}.{attr} must be 'async def' to implement "
                f"{iface.__name__}.{attr}"
            )
        want = inspect.signature(decl)
        have = inspect.signature(got)
        if list(want.parameters) != list(have.parameters):
            raise RegistrationError(
                f"{impl.__name__}.{attr}{have} does not match the interface "
                f"signature {iface.__name__}.{attr}{want}"
            )


@dataclass
class ComponentContext:
    """What a component implementation can see of the world.

    Handed to the optional ``init(self, ctx)`` hook.  ``get`` resolves other
    components' stubs (through the owning proclet, so placement stays
    invisible); ``replica_id`` identifies this replica among its peers,
    which routed components use to partition state.
    """

    component: str
    replica_id: int
    version: str
    getter: Callable[[type], Any]
    logger: logging.Logger = field(default_factory=lambda: logging.getLogger("repro"))
    config: dict[str, Any] = field(default_factory=dict)
    #: Durable keyed state scoped to this component
    #: (:class:`repro.state.runtime.ComponentState`); memory-only under the
    #: single-process deployer, WAL-backed under the multi-process one.
    state: Any = None

    def get(self, iface: type[T]) -> T:
        """Return a stub for another component (like Figure 2's ``Get[T]``)."""
        return self.getter(iface)


async def instantiate(
    impl: type,
    ctx: ComponentContext,
) -> Any:
    """Construct and initialize one replica of an implementation class.

    Implementations may take zero constructor arguments; state belongs in
    ``__init__`` (local) and ``init`` (dependent on other components).
    """
    try:
        instance = impl()
    except TypeError as exc:
        raise RegistrationError(
            f"implementation {impl.__name__} must be constructible with no "
            f"arguments (got: {exc}); acquire dependencies in 'async def "
            "init(self, ctx)' instead"
        ) from exc
    hook = getattr(instance, "init", None)
    if hook is not None and inspect.iscoroutinefunction(hook):
        await hook(ctx)
    return instance


async def shutdown_instance(instance: Any) -> None:
    """Run the optional async shutdown hook of a component instance."""
    hook = getattr(instance, "shutdown", None)
    if hook is not None and inspect.iscoroutinefunction(hook):
        await hook()
