"""The component registry — what the code generator sees (§4.2).

All ``@implements`` registrations land here.  When a deployment starts, the
registry is *frozen*: component ids are assigned from sorted names, every
interface is compiled into its wire contract, and the deployment version is
digested.  Freezing is the moment the paper's build step happens; after it,
the component set is immutable for the life of the process, which is what
lets every proclet agree on numeric ids without exchanging schemas.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.codegen.compiler import InterfaceSpec, compile_interface
from repro.codegen.versioning import deployment_version
from repro.core.component import component_name
from repro.core.errors import ComponentNotFound, RegistrationError


@dataclass(frozen=True)
class Registration:
    """One interface/implementation pair plus its compiled contract."""

    name: str
    iface: type
    impl: type
    spec: InterfaceSpec
    component_id: int = -1  # assigned at freeze time

    def with_id(self, component_id: int) -> "Registration":
        return Registration(self.name, self.iface, self.impl, self.spec, component_id)


class Registry:
    """A mutable set of component registrations, freezable into a build.

    One global instance (:func:`global_registry`) backs ``@implements``;
    tests create private registries to isolate themselves.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._by_iface: dict[type, Registration] = {}
        self._frozen: Optional["FrozenRegistry"] = None

    def register(self, iface: type, impl: type) -> None:
        name = component_name(iface)
        with self._lock:
            existing = self._by_iface.get(iface)
            if existing is not None and existing.impl is not impl:
                raise RegistrationError(
                    f"component {name} already has implementation "
                    f"{existing.impl.__name__}; cannot also register "
                    f"{impl.__name__} (one implementation per interface)"
                )
            spec = compile_interface(iface, name)
            self._by_iface[iface] = Registration(name, iface, impl, spec)
            self._frozen = None  # new registration invalidates a prior freeze

    def freeze(self, salt: str = "", components: Optional[list[type]] = None) -> "FrozenRegistry":
        """Assign component ids and compute the deployment version.

        ``components`` restricts the build to a subset of registered
        interfaces (an application rarely deploys every component ever
        imported); by default all registrations are included.
        """
        with self._lock:
            if components is None:
                regs = list(self._by_iface.values())
            else:
                regs = [self._require(iface) for iface in components]
            regs.sort(key=lambda r: r.name)
            regs = [r.with_id(i) for i, r in enumerate(regs)]
            version = deployment_version((r.spec for r in regs), salt=salt)
            frozen = FrozenRegistry(tuple(regs), version)
            if components is None and not salt:
                self._frozen = frozen
            return frozen

    def _require(self, iface: type) -> Registration:
        try:
            return self._by_iface[iface]
        except KeyError:
            raise ComponentNotFound(
                f"no implementation registered for {component_name(iface)}; "
                "did you forget @implements or to import the defining module?"
            ) from None

    def lookup(self, iface: type) -> Registration:
        with self._lock:
            return self._require(iface)

    def interfaces(self) -> list[type]:
        """All registered interface classes (stable name order)."""
        with self._lock:
            return sorted(self._by_iface, key=lambda i: self._by_iface[i].name)

    def __contains__(self, iface: type) -> bool:
        with self._lock:
            return iface in self._by_iface

    def __len__(self) -> int:
        with self._lock:
            return len(self._by_iface)


class FrozenRegistry:
    """An immutable build: ids assigned, version digested."""

    def __init__(self, registrations: tuple[Registration, ...], version: str) -> None:
        self.registrations = registrations
        self.version = version
        self._by_iface = {r.iface: r for r in registrations}
        self._by_name = {r.name: r for r in registrations}
        self._by_id = {r.component_id: r for r in registrations}

    def by_iface(self, iface: type) -> Registration:
        try:
            return self._by_iface[iface]
        except KeyError:
            raise ComponentNotFound(
                f"component {component_name(iface)} is not part of this "
                f"deployment (version {self.version})"
            ) from None

    def by_name(self, name: str) -> Registration:
        try:
            return self._by_name[name]
        except KeyError:
            raise ComponentNotFound(f"unknown component name {name!r}") from None

    def by_id(self, component_id: int) -> Registration:
        try:
            return self._by_id[component_id]
        except KeyError:
            raise ComponentNotFound(f"unknown component id {component_id}") from None

    def names(self) -> list[str]:
        return [r.name for r in self.registrations]

    def __iter__(self) -> Iterator[Registration]:
        return iter(self.registrations)

    def __len__(self) -> int:
        return len(self.registrations)


_global = Registry()


def global_registry() -> Registry:
    """The process-wide registry that ``@implements`` writes into."""
    return _global
