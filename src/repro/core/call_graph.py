"""Fine-grained component call-graph telemetry (§5.1).

    "our framework can construct a fine-grained call graph between
    components and use it to identify the critical path, the bottleneck
    components, the chatty components, etc."

Every stub invocation reports an observation here.  The graph aggregates
per-edge call counts, bytes, and latency, and answers the queries the
runtime's placement engine asks: who talks to whom, which pairs are chatty
(co-location candidates), which components dominate latency (bottlenecks),
and what the critical path of a request tree looks like.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

#: Name used for calls originating outside any component (e.g. main, the
#: load generator, an HTTP front door).
ROOT = "<root>"


@dataclass
class EdgeStats:
    """Aggregated observations for one (caller, callee, method) edge."""

    caller: str
    callee: str
    method: str
    calls: int = 0
    local_calls: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    total_latency_s: float = 0.0
    errors: int = 0

    @property
    def remote_calls(self) -> int:
        return self.calls - self.local_calls

    @property
    def avg_latency_s(self) -> float:
        return self.total_latency_s / self.calls if self.calls else 0.0

    @property
    def avg_bytes(self) -> float:
        return (self.bytes_sent + self.bytes_received) / self.calls if self.calls else 0.0


class CallGraph:
    """Thread-safe aggregation of component-to-component call telemetry."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._edges: dict[tuple[str, str, str], EdgeStats] = {}

    def record(
        self,
        caller: str,
        callee: str,
        method: str,
        *,
        latency_s: float,
        bytes_sent: int = 0,
        bytes_received: int = 0,
        local: bool = False,
        error: bool = False,
    ) -> None:
        key = (caller, callee, method)
        with self._lock:
            stats = self._edges.get(key)
            if stats is None:
                stats = EdgeStats(caller, callee, method)
                self._edges[key] = stats
            stats.calls += 1
            if local:
                stats.local_calls += 1
            stats.bytes_sent += bytes_sent
            stats.bytes_received += bytes_received
            stats.total_latency_s += latency_s
            if error:
                stats.errors += 1

    # -- queries -------------------------------------------------------------

    def edges(self) -> list[EdgeStats]:
        with self._lock:
            return [_copy(e) for e in self._edges.values()]

    def components(self) -> set[str]:
        out: set[str] = set()
        for e in self.edges():
            if e.caller != ROOT:
                out.add(e.caller)
            out.add(e.callee)
        return out

    def pair_traffic(self) -> dict[tuple[str, str], EdgeStats]:
        """Per (caller, callee) pair, methods merged."""
        pairs: dict[tuple[str, str], EdgeStats] = {}
        for e in self.edges():
            key = (e.caller, e.callee)
            agg = pairs.get(key)
            if agg is None:
                agg = EdgeStats(e.caller, e.callee, "*")
                pairs[key] = agg
            agg.calls += e.calls
            agg.local_calls += e.local_calls
            agg.bytes_sent += e.bytes_sent
            agg.bytes_received += e.bytes_received
            agg.total_latency_s += e.total_latency_s
            agg.errors += e.errors
        return pairs

    def chatty_pairs(self, top: int = 5) -> list[tuple[str, str, int]]:
        """The most frequently communicating component pairs — the
        co-location candidates the paper describes (§3.1, §5.1)."""
        pairs = self.pair_traffic()
        ranked = sorted(
            ((c, s, stats.calls) for (c, s), stats in pairs.items() if c != ROOT),
            key=lambda t: t[2],
            reverse=True,
        )
        return ranked[:top]

    def bottlenecks(self, top: int = 5) -> list[tuple[str, float]]:
        """Components ranked by total time spent inside them (self time).

        Self time of a callee on an edge is its total latency minus the
        latency of the calls it made in turn; a coarse but serviceable
        estimate when edges overlap.
        """
        inbound: dict[str, float] = {}
        outbound: dict[str, float] = {}
        for e in self.edges():
            inbound[e.callee] = inbound.get(e.callee, 0.0) + e.total_latency_s
            if e.caller != ROOT:
                outbound[e.caller] = outbound.get(e.caller, 0.0) + e.total_latency_s
        self_time = {
            c: max(0.0, inbound.get(c, 0.0) - outbound.get(c, 0.0))
            for c in set(inbound) | set(outbound)
        }
        return sorted(self_time.items(), key=lambda t: t[1], reverse=True)[:top]

    def critical_path(self, root: str = ROOT) -> list[str]:
        """The heaviest average-latency path from ``root`` through the graph.

        Cycles (rare, but components may be mutually recursive) are broken
        by refusing to revisit a node within one path.
        """
        adj: dict[str, list[EdgeStats]] = {}
        for e in self.edges():
            adj.setdefault(e.caller, []).append(e)

        best_path: list[str] = []
        best_cost = -1.0

        def walk(node: str, path: list[str], cost: float) -> None:
            nonlocal best_path, best_cost
            extended = False
            for e in adj.get(node, ()):
                if e.callee in path:
                    continue
                extended = True
                walk(e.callee, path + [e.callee], cost + e.avg_latency_s)
            if not extended and cost > best_cost:
                best_cost = cost
                best_path = path

        walk(root, [root], 0.0)
        return [n for n in best_path if n != ROOT]

    def colocation_advice(self, max_group_size: int = 0) -> list[tuple[str, str]]:
        """Pairs whose traffic is dominated by remote calls, ranked by the
        bytes they would save if co-located (§5.1's smarter placement)."""
        advice = []
        for (caller, callee), stats in self.pair_traffic().items():
            if caller == ROOT or stats.remote_calls == 0:
                continue
            saved = stats.bytes_sent + stats.bytes_received
            advice.append(((caller, callee), saved))
        advice.sort(key=lambda t: t[1], reverse=True)
        pairs = [pair for pair, _ in advice]
        return pairs[:max_group_size] if max_group_size else pairs

    def reset(self) -> None:
        with self._lock:
            self._edges.clear()

    # -- aggregation across processes -----------------------------------------

    def to_wire(self) -> list[dict]:
        """JSON-able edge list, shipped proclet -> manager with heartbeats."""
        return [
            {
                "caller": e.caller,
                "callee": e.callee,
                "method": e.method,
                "calls": e.calls,
                "local_calls": e.local_calls,
                "bytes_sent": e.bytes_sent,
                "bytes_received": e.bytes_received,
                "total_latency_s": e.total_latency_s,
                "errors": e.errors,
            }
            for e in self.edges()
        ]

    def replace_from_wire(self, source: str, raw: list[dict]) -> None:
        """Replace all edges previously reported by ``source``.

        Proclets send cumulative snapshots, so the manager replaces rather
        than adds; ``source`` scoping keeps different proclets' (and
        replicas') contributions separable.
        """
        with self._lock:
            stale = [
                k
                for k, e in self._edges.items()
                if getattr(e, "_source", None) == source
            ]
            for k in stale:
                del self._edges[k]
            for entry in raw:
                key = (source + "|" + entry["caller"], entry["callee"], entry["method"])
                stats = EdgeStats(
                    entry["caller"],
                    entry["callee"],
                    entry["method"],
                    entry["calls"],
                    entry["local_calls"],
                    entry["bytes_sent"],
                    entry["bytes_received"],
                    entry["total_latency_s"],
                    entry["errors"],
                )
                stats._source = source
                self._edges[key] = stats

    def total_calls(self) -> int:
        return sum(e.calls for e in self.edges())


def _copy(e: EdgeStats) -> EdgeStats:
    return EdgeStats(
        e.caller,
        e.callee,
        e.method,
        e.calls,
        e.local_calls,
        e.bytes_sent,
        e.bytes_received,
        e.total_latency_s,
        e.errors,
    )
