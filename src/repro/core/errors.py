"""Exception hierarchy for the repro framework.

Every error raised by the framework derives from :class:`WeaverError` so
applications can catch framework failures separately from their own bugs.
The hierarchy mirrors the paper's architecture: programming-model errors
(registration, configuration), data-plane errors (serialization, transport,
RPC), and control-plane errors (placement, rollout, deployment).
"""

from __future__ import annotations

import enum
from typing import Optional, Union


class WeaverError(Exception):
    """Base class for all framework errors."""


# ---------------------------------------------------------------------------
# Programming model (Section 3)
# ---------------------------------------------------------------------------


class RegistrationError(WeaverError):
    """A component interface or implementation was declared incorrectly."""


class ComponentNotFound(WeaverError):
    """No implementation is registered for the requested component interface."""


class ConfigError(WeaverError):
    """The application configuration is invalid."""


# ---------------------------------------------------------------------------
# Code generation / serialization (Sections 4.2, 6)
# ---------------------------------------------------------------------------


class SchemaError(WeaverError):
    """A type cannot be used in a component method signature."""


class EncodeError(WeaverError):
    """A value does not conform to its schema and cannot be encoded."""


class DecodeError(WeaverError):
    """A byte stream does not decode to a value of the expected schema."""


class VersionMismatch(DecodeError):
    """Peers disagree on the deployment version.

    The compact serialization format is only safe when encoder and decoder
    run the exact same version of the application (Section 6).  The
    transport handshake enforces this; a mismatch aborts the connection
    rather than risking silent corruption.
    """


# ---------------------------------------------------------------------------
# Transport / RPC (data plane)
# ---------------------------------------------------------------------------


class TransportError(WeaverError):
    """A connection-level failure (framing, I/O, handshake)."""


class ErrorCode(enum.IntEnum):
    """Stable status codes carried on the wire with every RPC failure.

    Whether an error is worth retrying is a property of its *code*, not of
    whoever happened to raise it; ``RPCError.retryable`` is derived from
    this enum so both data planes (TCP and HTTP baseline) agree.
    """

    INTERNAL = 0  # framework bug or unclassified failure; do not retry
    DEADLINE_EXCEEDED = 1  # the caller's budget ran out; retrying cannot help
    RESOURCE_EXHAUSTED = 2  # server shed the request before executing it
    UNAVAILABLE = 3  # no healthy replica reachable / connection failed
    APPLICATION = 4  # the component method itself raised


#: Codes for which a retry against another replica can plausibly succeed.
RETRYABLE_CODES = frozenset({ErrorCode.RESOURCE_EXHAUSTED, ErrorCode.UNAVAILABLE})


class RPCError(WeaverError):
    """A remote method invocation failed.

    ``code`` classifies the failure (see :class:`ErrorCode`); ``retryable``
    is derived from it.  ``executed`` records whether the remote method body
    *may have run*: errors raised before the request reached user code
    (connect failures, admission-control sheds, deadline rejections at the
    server door) carry ``executed=False`` and are safe to retry even for
    non-idempotent methods.
    """

    def __init__(
        self,
        message: str,
        *,
        code: Optional[Union[ErrorCode, int]] = None,
        retryable: Optional[bool] = None,
        executed: bool = True,
    ) -> None:
        super().__init__(message)
        if code is None:
            # Legacy constructor shape: RPCError(msg, retryable=True/False).
            code = ErrorCode.UNAVAILABLE if retryable else ErrorCode.INTERNAL
        self.code = ErrorCode(code)
        self.executed = executed

    @property
    def retryable(self) -> bool:
        return self.code in RETRYABLE_CODES


class RemoteApplicationError(RPCError):
    """The remote method raised an application-level exception.

    The original exception type name and message are preserved so callers
    can at least log a faithful description of the failure.  The method
    body ran, so these are never retried unless the method is idempotent —
    and even then the APPLICATION code is non-retryable by policy.
    """

    def __init__(self, exc_type: str, exc_message: str) -> None:
        super().__init__(
            f"{exc_type}: {exc_message}", code=ErrorCode.APPLICATION, executed=True
        )
        self.exc_type = exc_type
        self.exc_message = exc_message


class DeadlineExceeded(RPCError):
    """The call did not complete within its deadline.

    Non-retryable: once the budget is spent there is nothing left to retry
    with.  Callers that want another attempt must start a new call with a
    fresh deadline.
    """

    def __init__(
        self, message: str = "deadline exceeded", *, executed: bool = True
    ) -> None:
        super().__init__(message, code=ErrorCode.DEADLINE_EXCEEDED, executed=executed)


class ResourceExhausted(RPCError):
    """The server shed this request under overload (admission control).

    Retryable by design, and always ``executed=False``: shedding happens at
    the proclet door, before the method body runs, so even non-idempotent
    methods may be safely retried.
    """

    def __init__(self, message: str = "server at capacity") -> None:
        super().__init__(message, code=ErrorCode.RESOURCE_EXHAUSTED, executed=False)


class Unavailable(RPCError):
    """No healthy replica of the callee component is reachable.

    Retryable by design: replicas may be restarting (Section 3.1 notes that
    component replicas may fail and get restarted).  ``executed=False``
    marks failures that provably happened before the request was sent
    (dial errors, handshake failures) — those retries are safe for any
    method.  ``draining=True`` marks rejections from a replica that is
    shutting down gracefully: the door is closed but the replica is
    otherwise fine, so callers should fail over without penalizing it as
    broken (the breaker layer treats draining rejections as neutral).
    """

    def __init__(
        self,
        message: str = "component unavailable",
        *,
        executed: bool = True,
        draining: bool = False,
    ) -> None:
        super().__init__(message, code=ErrorCode.UNAVAILABLE, executed=executed)
        self.draining = draining


class WrongOwner(Unavailable):
    """A routed key reached a replica that does not own it.

    Raised by the state layer when a caller's :class:`Assignment` is stale
    — the ring changed mid-flight and the key's slice moved.  Retryable
    and provably not executed: the write was rejected at the ownership
    check, before touching state.  The caller's resolver drops its cached
    assignment on this marker (without penalizing the replica's breaker —
    the replica is healthy, the *caller's map* is old) so the retry
    re-resolves through the runtime and lands on the current owner.
    """

    def __init__(
        self, message: str = "replica does not own this key", *, owner: Optional[str] = None
    ) -> None:
        if "wrong-owner" not in message:
            message = f"wrong-owner: {message}"
        super().__init__(message, executed=False)
        self.wrong_owner = True
        #: The owner under the rejecting replica's assignment, if known
        #: (diagnostic only; callers re-resolve rather than trusting it).
        self.owner = owner


def error_from_code(
    code: Union[ErrorCode, int], message: str, *, executed: bool = True
) -> RPCError:
    """Rehydrate the canonical exception class for a wire-level error code."""
    try:
        code = ErrorCode(code)
    except ValueError:
        code = ErrorCode.INTERNAL
    if code is ErrorCode.DEADLINE_EXCEEDED:
        return DeadlineExceeded(message, executed=executed)
    if code is ErrorCode.RESOURCE_EXHAUSTED:
        err = ResourceExhausted(message)
        err.executed = executed
        return err
    if code is ErrorCode.UNAVAILABLE:
        # The wire carries (code, message, executed); the draining and
        # wrong-owner markers ride in the message text (set by RPCServer's
        # drain rejection and WrongOwner.__init__ respectively).
        if "wrong-owner" in message:
            return WrongOwner(message)
        return Unavailable(
            message, executed=executed, draining="draining" in message
        )
    return RPCError(message, code=code, executed=executed)


# ---------------------------------------------------------------------------
# Control plane (Section 4.3/4.4)
# ---------------------------------------------------------------------------


class RuntimeControlError(WeaverError):
    """The proclet <-> runtime control protocol was violated."""


class PlacementError(WeaverError):
    """The placement engine produced or was given an invalid assignment."""


class RolloutError(WeaverError):
    """An atomic rollout could not be performed or was violated."""


class CrossVersionViolation(RolloutError):
    """A request at one application version reached code at another version.

    This is exactly the failure mode the paper's atomic rollouts eliminate
    (Section 4.4, citing [78]).  The runtime raises this error in tests and
    simulations when the invariant would be broken.
    """
