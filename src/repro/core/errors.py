"""Exception hierarchy for the repro framework.

Every error raised by the framework derives from :class:`WeaverError` so
applications can catch framework failures separately from their own bugs.
The hierarchy mirrors the paper's architecture: programming-model errors
(registration, configuration), data-plane errors (serialization, transport,
RPC), and control-plane errors (placement, rollout, deployment).
"""

from __future__ import annotations


class WeaverError(Exception):
    """Base class for all framework errors."""


# ---------------------------------------------------------------------------
# Programming model (Section 3)
# ---------------------------------------------------------------------------


class RegistrationError(WeaverError):
    """A component interface or implementation was declared incorrectly."""


class ComponentNotFound(WeaverError):
    """No implementation is registered for the requested component interface."""


class ConfigError(WeaverError):
    """The application configuration is invalid."""


# ---------------------------------------------------------------------------
# Code generation / serialization (Sections 4.2, 6)
# ---------------------------------------------------------------------------


class SchemaError(WeaverError):
    """A type cannot be used in a component method signature."""


class EncodeError(WeaverError):
    """A value does not conform to its schema and cannot be encoded."""


class DecodeError(WeaverError):
    """A byte stream does not decode to a value of the expected schema."""


class VersionMismatch(DecodeError):
    """Peers disagree on the deployment version.

    The compact serialization format is only safe when encoder and decoder
    run the exact same version of the application (Section 6).  The
    transport handshake enforces this; a mismatch aborts the connection
    rather than risking silent corruption.
    """


# ---------------------------------------------------------------------------
# Transport / RPC (data plane)
# ---------------------------------------------------------------------------


class TransportError(WeaverError):
    """A connection-level failure (framing, I/O, handshake)."""


class RPCError(WeaverError):
    """A remote method invocation failed."""

    def __init__(self, message: str, *, retryable: bool = False) -> None:
        super().__init__(message)
        self.retryable = retryable


class RemoteApplicationError(RPCError):
    """The remote method raised an application-level exception.

    The original exception type name and message are preserved so callers
    can at least log a faithful description of the failure.
    """

    def __init__(self, exc_type: str, exc_message: str) -> None:
        super().__init__(f"{exc_type}: {exc_message}", retryable=False)
        self.exc_type = exc_type
        self.exc_message = exc_message


class DeadlineExceeded(RPCError):
    """The call did not complete within its deadline."""

    def __init__(self, message: str = "deadline exceeded") -> None:
        super().__init__(message, retryable=True)


class Unavailable(RPCError):
    """No healthy replica of the callee component is reachable.

    Retryable by design: replicas may be restarting (Section 3.1 notes that
    component replicas may fail and get restarted).
    """

    def __init__(self, message: str = "component unavailable") -> None:
        super().__init__(message, retryable=True)


# ---------------------------------------------------------------------------
# Control plane (Section 4.3/4.4)
# ---------------------------------------------------------------------------


class RuntimeControlError(WeaverError):
    """The proclet <-> runtime control protocol was violated."""


class PlacementError(WeaverError):
    """The placement engine produced or was given an invalid assignment."""


class RolloutError(WeaverError):
    """An atomic rollout could not be performed or was violated."""


class CrossVersionViolation(RolloutError):
    """A request at one application version reached code at another version.

    This is exactly the failure mode the paper's atomic rollouts eliminate
    (Section 4.4, citing [78]).  The runtime raises this error in tests and
    simulations when the invariant would be broken.
    """
