"""Application deployment configuration.

The paper's applications carry no environment-specific code; *how* the
logical monolith is split across processes, replicated, scaled, and rolled
out is configuration consumed by the runtime, not code (§4.3).  This module
defines that configuration surface.

Components can be referred to by interface class or by fully qualified name
(strings are what a config file would contain; classes are friendlier in
code).  ``AppConfig.resolve`` normalizes everything to names against a
frozen registry and validates that groups are disjoint and complete.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Iterable, Optional, Union

from repro.core.component import component_name
from repro.core.errors import ConfigError

ComponentRef = Union[type, str]


def _ref_name(ref: ComponentRef) -> str:
    if isinstance(ref, str):
        return ref
    return component_name(ref)


@dataclass(frozen=True)
class AutoscaleConfig:
    """HPA-style autoscaling policy (§6.1 uses Horizontal Pod Autoscalers).

    Replica count is adjusted to keep per-replica utilization near
    ``target_utilization`` (fraction of one core), clamped to
    [min_replicas, max_replicas].  ``scale_down_stabilization_s`` delays
    scale-down, mirroring the HPA's default anti-flapping window.
    """

    min_replicas: int = 1
    max_replicas: int = 64
    target_utilization: float = 0.65
    scale_up_tolerance: float = 0.10
    scale_down_stabilization_s: float = 30.0

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ConfigError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ConfigError("max_replicas must be >= min_replicas")
        if not 0.0 < self.target_utilization <= 1.0:
            raise ConfigError("target_utilization must be in (0, 1]")


@dataclass(frozen=True)
class RolloutConfig:
    """Atomic blue/green rollout policy (§4.4).

    Traffic shifts from the old version to the new in ``steps`` increments,
    waiting ``step_duration_s`` between increments; a request is pinned to
    one version for its entire lifetime.
    """

    strategy: str = "blue_green"  # blue_green | rolling (baseline, unsafe)
    steps: int = 10
    step_duration_s: float = 1.0

    def __post_init__(self) -> None:
        if self.strategy not in ("blue_green", "rolling"):
            raise ConfigError(f"unknown rollout strategy {self.strategy!r}")
        if self.steps < 1:
            raise ConfigError("rollout steps must be >= 1")


@dataclass(frozen=True)
class AppConfig:
    """Everything the runtime needs to deploy one application."""

    name: str = "app"
    #: Wire format for remote calls: compact | tagged | json.
    codec: str = "compact"
    #: Data-plane transport between proclets: tcp | unix | inproc.
    transport: str = "tcp"
    #: Co-location groups: components in the same group share an OS process.
    #: Components absent from every group each get their own group (the
    #: paper's "apples-to-apples" non-co-located deployment).
    colocate: tuple[tuple[ComponentRef, ...], ...] = ()
    #: Initial replica count per component (name or class); default 1.
    replicas: dict[ComponentRef, int] = field(default_factory=dict)
    autoscale: AutoscaleConfig = field(default_factory=AutoscaleConfig)
    rollout: RolloutConfig = field(default_factory=RolloutConfig)
    #: Per-call deadline for remote invocations, seconds.
    call_timeout_s: float = 30.0
    #: Max automatic retries for retryable RPC failures.
    max_retries: int = 2
    #: Admission control: max concurrently executing requests per proclet
    #: (0 = unlimited, the default).  Excess requests queue, then shed.
    max_inflight: int = 0
    #: Admission control: max queued requests before shedding with
    #: RESOURCE_EXHAUSTED.  Only meaningful when max_inflight > 0.
    max_queue_depth: int = 64
    #: Compress large data-plane frames on the wire (§5.1's network-bound
    #: optimization; a per-sender runtime policy, no negotiation needed).
    compress_wire: bool = False
    #: Per-replica circuit breakers: callers eject replicas that keep
    #: failing instead of waiting for the manager's health sweep.
    breakers_enabled: bool = True
    #: Consecutive attempt failures that trip a replica's breaker OPEN.
    breaker_failures: int = 3
    #: Base cooldown before an OPEN breaker admits a half-open probe
    #: (doubles on each re-trip).
    breaker_open_for_s: float = 1.0
    #: Graceful-drain budget for planned replica shutdown (autoscale
    #: shrink, rollout replacement): in-flight RPCs get this long to
    #: finish after the door closes.  0 disables drain (hard stop).
    drain_deadline_s: float = 5.0
    #: Root directory for durable component state (repro.state).  None
    #: (the default) means memory-only state for single-process runs; the
    #: multi-process deployer provisions a per-deployment temp dir when
    #: unset so ``ctx.state`` is durable across replica churn.
    state_dir: Optional[str] = None
    #: Hash-partitions per component's key space; deployment-stable (the
    #: key->shard mapping must never move, only shard *ownership* does).
    state_shards: int = 16
    #: fsync every WAL append (durability vs. throughput knob).  Off by
    #: default: flush-to-OS before ack survives process kills, which is
    #: the failure domain the runtime manages (§4.1's machine failures
    #: need replication, out of scope).
    state_fsync: bool = False
    #: WAL appends per shard between snapshots (bounds replay cost).
    state_snapshot_every: int = 256
    #: Data-plane worker event loops per proclet (multi-core serving).
    #: 1 = serve on the proclet's main loop (the classic single-loop
    #: plane); N > 1 = N shared-nothing worker loops behind one listening
    #: endpoint (SO_REUSEPORT where available, dup-and-distribute
    #: otherwise), each owning its connections end-to-end.
    workers: int = 1
    #: Event-loop accelerator policy: "auto" uses uvloop when installed
    #: (silent stdlib fallback), "on" warns when missing, "off" never
    #: tries.  Applies to worker loops and to subprocess proclet mains.
    uvloop: str = "auto"
    #: Payloads at or above this many bytes travel as a streaming RPC
    #: (chunked, credit-gated) instead of one frame; 0 disables streaming.
    stream_threshold_bytes: int = 1 << 20
    #: Chunk size for streaming RPCs, bytes.  Each queued chunk is
    #: head-of-line latency for small RPCs on the same connection, so
    #: bigger is not better past the syscall-amortization point.
    stream_chunk_bytes: int = 64 * 1024
    #: Telemetry level: "full" (traces, time series, exemplars) | "off"
    #: (counters and heartbeats only — the zero-span data plane).
    telemetry: str = "full"
    #: Adaptive head-sampling budget: new traces admitted per second per
    #: process (token bucket, burst 2x).  Low-rate traffic — tests,
    #: interactive use — is always fully traced; saturated hot paths pay
    #: span cost for at most this many traces/s.  ``None`` traces every
    #: request.  Metrics record every call regardless.
    trace_rate: Optional[float] = 500.0
    #: Tail-sampling keep probability for unremarkable traces (errors,
    #: deadline-exceeded and slow-tail traces are always kept).
    trace_sample_rate: float = 1.0
    #: Bound on traces retained by the manager's trace store (oldest
    #: evicted, with drop accounting).
    trace_max_traces: int = 2000
    #: SLO: long-run fraction of requests allowed to fail (0.01 = 99%).
    slo_error_budget: float = 0.01
    #: SLO: latency objective — a request slower than this is SLO-bad.
    slo_latency_ms: float = 250.0
    #: SLO: long-run fraction of requests allowed over slo_latency_ms.
    slo_latency_budget: float = 0.05
    #: Interval of the manager's telemetry tick (series, signals, and the
    #: remediation controller all run on it).  1s is the paper-faithful
    #: default; benchmarks tighten it to shrink detection latency.
    telemetry_tick_s: float = 1.0
    #: Closed-loop remediation kill switch: "on" executes guarded actions,
    #: "observe" journals every decision without acting (the dry-run mode
    #: to enable first), "off" disables the controller entirely.
    remediation: str = "off"
    #: Guardrail: per-(target, action-type) cooldown — the same fix is
    #: never applied to the same target more often than this.
    remediation_cooldown_s: float = 15.0
    #: Guardrail: executed actions allowed per rolling minute, deployment
    #: wide.  A metric storm can flap signals every tick; it cannot
    #: translate into more actions than this.
    remediation_max_actions_per_min: int = 6
    #: Guardrail: fraction of a group's live replicas that may be under
    #: remediation (restart/eject) concurrently — blast-radius cap,
    #: clamped to at least one replica so singletons stay fixable.
    remediation_blast_fraction: float = 1 / 3
    #: Bounded action-journal length exported via ``runtime.status``.
    remediation_journal_size: int = 256
    #: Free-form, application-visible settings (ctx.config).
    settings: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.codec not in ("compact", "tagged", "json"):
            raise ConfigError(f"unknown codec {self.codec!r}")
        if self.transport not in ("tcp", "unix", "inproc"):
            raise ConfigError(f"unknown transport {self.transport!r}")
        if self.call_timeout_s <= 0:
            raise ConfigError("call_timeout_s must be positive")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be >= 0")
        if self.max_inflight < 0:
            raise ConfigError("max_inflight must be >= 0 (0 = unlimited)")
        if self.max_queue_depth < 0:
            raise ConfigError("max_queue_depth must be >= 0")
        if self.breaker_failures < 1:
            raise ConfigError("breaker_failures must be >= 1")
        if self.breaker_open_for_s <= 0:
            raise ConfigError("breaker_open_for_s must be positive")
        if self.drain_deadline_s < 0:
            raise ConfigError("drain_deadline_s must be >= 0 (0 = hard stop)")
        if self.state_shards < 1:
            raise ConfigError("state_shards must be >= 1")
        if self.state_snapshot_every < 1:
            raise ConfigError("state_snapshot_every must be >= 1")
        if self.workers < 1:
            raise ConfigError("workers must be >= 1")
        if self.uvloop not in ("auto", "on", "off"):
            raise ConfigError(f"uvloop must be auto/on/off, got {self.uvloop!r}")
        if self.stream_threshold_bytes < 0:
            raise ConfigError("stream_threshold_bytes must be >= 0 (0 disables)")
        if self.stream_chunk_bytes < 4096:
            raise ConfigError("stream_chunk_bytes must be >= 4096")
        if self.telemetry not in ("full", "off"):
            raise ConfigError(f"telemetry must be full/off, got {self.telemetry!r}")
        if self.trace_rate is not None and self.trace_rate <= 0:
            raise ConfigError("trace_rate must be > 0 (None traces everything)")
        if not 0.0 <= self.trace_sample_rate <= 1.0:
            raise ConfigError("trace_sample_rate must be in [0, 1]")
        if self.trace_max_traces < 1:
            raise ConfigError("trace_max_traces must be >= 1")
        if not 0.0 < self.slo_error_budget < 1.0:
            raise ConfigError("slo_error_budget must be in (0, 1)")
        if self.slo_latency_ms <= 0:
            raise ConfigError("slo_latency_ms must be positive")
        if not 0.0 < self.slo_latency_budget < 1.0:
            raise ConfigError("slo_latency_budget must be in (0, 1)")
        if self.telemetry_tick_s <= 0:
            raise ConfigError("telemetry_tick_s must be positive")
        if self.remediation not in ("on", "observe", "off"):
            raise ConfigError(
                f"remediation must be on/observe/off, got {self.remediation!r}"
            )
        if self.remediation_cooldown_s < 0:
            raise ConfigError("remediation_cooldown_s must be >= 0")
        if self.remediation_max_actions_per_min < 1:
            raise ConfigError("remediation_max_actions_per_min must be >= 1")
        if not 0.0 < self.remediation_blast_fraction <= 1.0:
            raise ConfigError("remediation_blast_fraction must be in (0, 1]")
        if self.remediation_journal_size < 1:
            raise ConfigError("remediation_journal_size must be >= 1")

    # -- normalization ------------------------------------------------------

    def resolve(self, names: Iterable[str]) -> "ResolvedConfig":
        """Validate against the deployed component set and normalize refs.

        ``names`` is the full set of component names in the frozen build.
        Returns the placement-ready view: disjoint groups covering every
        component, and per-component replica counts.
        """
        all_names = list(names)
        known = set(all_names)

        groups: list[tuple[str, ...]] = []
        seen: set[str] = set()
        for group in self.colocate:
            resolved = tuple(_ref_name(ref) for ref in group)
            for n in resolved:
                if n not in known:
                    raise ConfigError(
                        f"colocate group names unknown component {n!r}; "
                        f"deployed components: {sorted(known)}"
                    )
                if n in seen:
                    raise ConfigError(
                        f"component {n!r} appears in more than one colocate group"
                    )
                seen.add(n)
            if resolved:
                groups.append(resolved)
        for n in all_names:
            if n not in seen:
                groups.append((n,))

        replicas: dict[str, int] = {}
        for ref, count in self.replicas.items():
            n = _ref_name(ref)
            if n not in known:
                raise ConfigError(f"replicas names unknown component {n!r}")
            if count < 1:
                raise ConfigError(f"replica count for {n!r} must be >= 1")
            replicas[n] = count
        for n in all_names:
            replicas.setdefault(n, 1)

        return ResolvedConfig(app=self, groups=tuple(groups), replicas=replicas)

    def colocate_all(self, names: Iterable[str]) -> "AppConfig":
        """Return a copy that places every component in one process —
        the paper's single-process co-location experiment (§6.1)."""
        return replace(self, colocate=(tuple(names),))

    @classmethod
    def from_dict(cls, raw: dict[str, Any]) -> "AppConfig":
        """Build from a parsed config file (e.g. TOML)."""
        known = {
            "name",
            "codec",
            "transport",
            "colocate",
            "replicas",
            "autoscale",
            "rollout",
            "call_timeout_s",
            "max_retries",
            "max_inflight",
            "max_queue_depth",
            "compress_wire",
            "breakers_enabled",
            "breaker_failures",
            "breaker_open_for_s",
            "drain_deadline_s",
            "state_dir",
            "state_shards",
            "state_fsync",
            "state_snapshot_every",
            "workers",
            "uvloop",
            "stream_threshold_bytes",
            "stream_chunk_bytes",
            "telemetry",
            "trace_rate",
            "trace_sample_rate",
            "trace_max_traces",
            "slo_error_budget",
            "slo_latency_ms",
            "slo_latency_budget",
            "telemetry_tick_s",
            "remediation",
            "remediation_cooldown_s",
            "remediation_max_actions_per_min",
            "remediation_blast_fraction",
            "remediation_journal_size",
            "settings",
        }
        unknown = set(raw) - known
        if unknown:
            raise ConfigError(f"unknown config keys: {sorted(unknown)}")
        kwargs: dict[str, Any] = {k: v for k, v in raw.items() if k in known}
        if "colocate" in kwargs:
            kwargs["colocate"] = tuple(tuple(g) for g in kwargs["colocate"])
        if "autoscale" in kwargs and isinstance(kwargs["autoscale"], dict):
            kwargs["autoscale"] = AutoscaleConfig(**kwargs["autoscale"])
        if "rollout" in kwargs and isinstance(kwargs["rollout"], dict):
            kwargs["rollout"] = RolloutConfig(**kwargs["rollout"])
        return cls(**kwargs)

    @classmethod
    def from_toml(cls, text: str) -> "AppConfig":
        """Parse a TOML config document.

        Deployment configuration is data, not code (§4.3); this is the
        file-format front end::

            name = "boutique"
            codec = "compact"
            compress_wire = true
            colocate = [["app.Cart", "app.CartStore"]]

            [replicas]
            "app.Frontend" = 3

            [autoscale]
            target_utilization = 0.65
        """
        import tomllib

        try:
            raw = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise ConfigError(f"invalid TOML config: {exc}") from exc
        return cls.from_dict(raw)

    @classmethod
    def load(cls, path: str) -> "AppConfig":
        """Read and parse a TOML config file."""
        with open(path, encoding="utf-8") as f:
            return cls.from_toml(f.read())


@dataclass(frozen=True)
class ResolvedConfig:
    """An :class:`AppConfig` normalized against a concrete build."""

    app: AppConfig
    #: Disjoint colocation groups covering every deployed component.
    groups: tuple[tuple[str, ...], ...]
    #: Initial replica count per component name.
    replicas: dict[str, int]

    def group_of(self, name: str) -> int:
        for i, group in enumerate(self.groups):
            if name in group:
                return i
        raise ConfigError(f"component {name!r} not in any group")
