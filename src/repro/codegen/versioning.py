"""Deployment version computation.

A *deployment version* identifies one atomically-deployed build of the
application (Section 4.4).  It is a digest over every registered component's
compiled wire contract, so any change to any method signature, dataclass
field order, or component set yields a new version.  The transport handshake
(:mod:`repro.transport.connection`) exchanges this digest and refuses
cross-version connections — the mechanism that makes the tag-free compact
format safe and that enforces the atomic-rollout invariant on the data
plane.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from repro.codegen.compiler import InterfaceSpec

#: Version of the wire protocol itself (framing, handshake); bumped when the
#: framework's own encoding changes incompatibly.
PROTOCOL_VERSION = 1


def deployment_version(specs: Iterable[InterfaceSpec], salt: str = "") -> str:
    """Digest the wire contracts of all components into a version string.

    ``salt`` lets tests and rollout experiments mint distinct versions for
    otherwise identical code (standing in for a new build of the same
    source), exactly as a real build id would.
    """
    h = hashlib.sha256()
    h.update(f"protocol:{PROTOCOL_VERSION};".encode())
    for spec in sorted(specs, key=lambda s: s.name):
        h.update(spec.signature().encode())
        h.update(b";")
    if salt:
        h.update(f"salt:{salt}".encode())
    return h.hexdigest()[:16]
