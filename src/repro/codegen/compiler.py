"""Compilation of component interfaces into wire-level method schemas.

The Go prototype inspects ``Implements[T]`` embeddings at build time and
generates marshaling and RPC stub code (Section 4.2).  Here the same job is
done at import time: :func:`compile_interface` walks the async methods
declared on a component interface, derives a :class:`~repro.codegen.schema.Schema`
for the argument tuple and the result of each, and assigns every method a
stable numeric id.

Those numeric ids — like the absence of field tags in the compact format —
are only safe because every proclet in a deployment runs the same code
version: ids are assigned from the sorted method names, so any signature
change anywhere changes the deployment version (see
:mod:`repro.codegen.versioning`) and the transport handshake keeps
old and new processes apart.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, get_type_hints

from repro.codegen.schema import ANY, Kind, NONE, Schema, schema_of
from repro.core.errors import RegistrationError

#: Attribute set by the @routed decorator on interface methods.
ROUTING_ATTR = "_repro_routed_by"

#: Attribute set by the @idempotent decorator on interface methods.
IDEMPOTENT_ATTR = "_repro_idempotent"


@dataclass(frozen=True)
class MethodSpec:
    """Everything the framework needs to marshal and dispatch one method."""

    name: str
    index: int
    arg_names: tuple[str, ...]
    arg_schema: Schema  # a TUPLE schema over the positional arguments
    result_schema: Schema
    routing_key: Optional[str] = None  # argument name used for affinity routing
    idempotent: bool = False  # safe to retry/hedge even if it may have run

    @property
    def routing_index(self) -> Optional[int]:
        """Position of the routing-key argument, or None if unrouted."""
        if self.routing_key is None:
            return None
        return self.arg_names.index(self.routing_key)

    def signature(self) -> str:
        """Canonical signature string, folded into the deployment version."""
        routed = f"@{self.routing_key}" if self.routing_key else ""
        idem = "!idem" if self.idempotent else ""
        return (
            f"{self.name}{routed}{idem}({self.arg_schema.canonical()})"
            f"->{self.result_schema.canonical()}"
        )


@dataclass(frozen=True)
class InterfaceSpec:
    """The compiled wire contract of one component interface."""

    name: str  # fully qualified interface name
    methods: tuple[MethodSpec, ...]
    by_name: dict[str, MethodSpec] = field(compare=False, hash=False, default_factory=dict)

    def method(self, name: str) -> MethodSpec:
        try:
            return self.by_name[name]
        except KeyError:
            raise RegistrationError(
                f"component {self.name} has no method {name!r}"
            ) from None

    def signature(self) -> str:
        sigs = ";".join(m.signature() for m in self.methods)
        return f"{self.name}{{{sigs}}}"


def routed(by: str) -> Callable:
    """Mark an interface method for affinity routing (Section 5.2).

    Calls are routed so that all invocations with equal values of the
    ``by`` argument land on the same replica — the Slicer-style routing the
    paper embeds into the framework::

        class Cache(Component):
            @routed(by="key")
            async def get(self, key: str) -> bytes: ...
    """

    def mark(fn: Callable) -> Callable:
        setattr(fn, ROUTING_ATTR, by)
        return fn

    return mark


def idempotent(fn: Callable) -> Callable:
    """Declare an interface method safe to retry and hedge.

    The resilience layer only re-executes a method that *may already have
    run* if it is marked idempotent; everything else is retried solely on
    failures that provably happened before execution (connect errors,
    admission-control sheds).  Hedged requests are restricted to idempotent
    methods outright::

        class ProductCatalog(Component):
            @idempotent
            async def get_product(self, product_id: str) -> Product: ...
    """
    setattr(fn, IDEMPOTENT_ATTR, True)
    return fn


def compile_interface(iface: type, name: str) -> InterfaceSpec:
    """Derive the :class:`InterfaceSpec` for a component interface class.

    Methods are every non-underscore coroutine function declared on the
    interface (inherited framework plumbing is excluded).  Indices are
    assigned in sorted name order, so they are deterministic for any two
    processes compiled from identical source.
    """
    methods = []
    names = sorted(
        attr
        for attr, value in _declared_methods(iface)
        if not attr.startswith("_")
    )
    declared = dict(_declared_methods(iface))
    for index, attr in enumerate(names):
        fn = declared[attr]
        methods.append(_compile_method(iface, attr, fn, index))
    if not methods:
        raise RegistrationError(
            f"component interface {iface.__name__!r} declares no methods; an "
            "interface must expose at least one async method"
        )
    spec = InterfaceSpec(name=name, methods=tuple(methods))
    spec.by_name.update({m.name: m for m in methods})
    return spec


def _declared_methods(iface: type) -> list[tuple[str, Callable]]:
    """Methods declared on the interface or its non-framework bases."""
    from repro.core.component import Component  # cycle: component imports us

    out: dict[str, Callable] = {}
    for klass in reversed(iface.__mro__):
        if klass in (object, Component):
            continue
        for attr, value in vars(klass).items():
            if inspect.isfunction(value):
                out[attr] = value
    return list(out.items())


def _compile_method(iface: type, attr: str, fn: Callable, index: int) -> MethodSpec:
    if not inspect.iscoroutinefunction(fn):
        raise RegistrationError(
            f"{iface.__name__}.{attr} must be declared 'async def': component "
            "method calls may become RPCs and are therefore awaitable"
        )
    sig = inspect.signature(fn)
    try:
        hints = get_type_hints(fn)
    except Exception as exc:
        raise RegistrationError(
            f"cannot resolve type hints of {iface.__name__}.{attr}: {exc}"
        ) from exc

    params = list(sig.parameters.values())
    if not params or params[0].name != "self":
        raise RegistrationError(
            f"{iface.__name__}.{attr} must be an instance method (missing self)"
        )
    arg_names = []
    arg_schemas = []
    for p in params[1:]:
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            raise RegistrationError(
                f"{iface.__name__}.{attr} uses *args/**kwargs, which cannot "
                "cross a wire boundary; declare explicit parameters"
            )
        if p.name not in hints:
            raise RegistrationError(
                f"{iface.__name__}.{attr} parameter {p.name!r} has no type "
                "annotation; the marshaling code is generated from type hints"
            )
        arg_names.append(p.name)
        arg_schemas.append(schema_of(hints[p.name]))

    result_schema = schema_of(hints["return"]) if "return" in hints else NONE
    if arg_schemas:
        arg_schema = Schema(Kind.TUPLE, args=tuple(arg_schemas))
    else:
        arg_schema = Schema(Kind.TUPLE, args=(NONE, ANY))  # zero-arg: empty var tuple

    routing_key = getattr(fn, ROUTING_ATTR, None)
    if routing_key is not None and routing_key not in arg_names:
        raise RegistrationError(
            f"{iface.__name__}.{attr} is @routed(by={routing_key!r}) but has "
            f"no parameter of that name (parameters: {arg_names})"
        )
    return MethodSpec(
        name=attr,
        index=index,
        arg_names=tuple(arg_names),
        arg_schema=arg_schema,
        result_schema=result_schema,
        routing_key=routing_key,
        idempotent=bool(getattr(fn, IDEMPOTENT_ATTR, False)),
    )
