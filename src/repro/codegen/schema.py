"""Schema derivation from Python type hints.

The paper's prototype uses build-time code generation: it inspects
``Implements[T]`` embeddings, computes the set of component interfaces, and
generates marshaling code (Section 4.2).  The Python analogue is runtime
introspection: this module derives a :class:`Schema` — a small, immutable
description of a wire type — from the type hints on component methods and
dataclasses.  The serializers in :mod:`repro.serde` compile these schemas
into encoder/decoder callables, and :mod:`repro.codegen.versioning` hashes
them into the deployment version used by the transport handshake.

Supported types::

    bool, int, float, str, bytes
    list[T], tuple[T1, ..., Tn], dict[K, V], set[T]
    Optional[T] (i.e. T | None)
    enum.Enum subclasses
    @dataclass classes (fields in declaration order)
    None (for methods returning nothing)

Field order matters: the compact format (Section 6) encodes struct fields in
declaration order with no tags, relying on encoder and decoder agreeing on
the schema — which they do, because both sides run the same version.
"""

from __future__ import annotations

import dataclasses
import enum
import types
import typing
from dataclasses import dataclass
from typing import Any, Optional, Union, get_args, get_origin, get_type_hints

from repro.core.errors import SchemaError


class Kind(enum.Enum):
    """The wire kind of a schema node."""

    NONE = "none"
    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STR = "str"
    BYTES = "bytes"
    LIST = "list"
    TUPLE = "tuple"
    SET = "set"
    DICT = "dict"
    OPTIONAL = "optional"
    STRUCT = "struct"
    ENUM = "enum"
    ANY = "any"


@dataclass(frozen=True)
class Field:
    """A named field of a struct schema."""

    name: str
    schema: "Schema"


@dataclass(frozen=True)
class Schema:
    """An immutable description of a serializable type.

    ``args`` holds element schemas for containers; ``fields`` holds the
    ordered fields of a struct; ``cls`` holds the Python class for structs
    and enums so decoders can reconstruct instances.
    """

    kind: Kind
    args: tuple["Schema", ...] = ()
    fields: tuple[Field, ...] = ()
    cls: Optional[type] = None

    def canonical(self) -> str:
        """A canonical string for fingerprinting (versioning).

        Two schemas with the same canonical string are wire-compatible.
        Class identity is included by qualified name so renaming a struct
        (or reordering its fields) changes the deployment version.
        """
        if self.kind is Kind.STRUCT:
            inner = ",".join(f"{f.name}:{f.schema.canonical()}" for f in self.fields)
            return f"struct<{_type_name(self.cls)}>({inner})"
        if self.kind is Kind.ENUM:
            assert self.cls is not None
            members = ",".join(m.name for m in self.cls)
            return f"enum<{_type_name(self.cls)}>({members})"
        if self.args:
            inner = ",".join(a.canonical() for a in self.args)
            return f"{self.kind.value}({inner})"
        return self.kind.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schema({self.canonical()})"


def _type_name(cls: Optional[type]) -> str:
    if cls is None:
        return "?"
    return f"{cls.__module__}.{cls.__qualname__}"


# Primitive singletons, shared to keep schema trees small.
NONE = Schema(Kind.NONE)
BOOL = Schema(Kind.BOOL)
INT = Schema(Kind.INT)
FLOAT = Schema(Kind.FLOAT)
STR = Schema(Kind.STR)
BYTES = Schema(Kind.BYTES)
ANY = Schema(Kind.ANY)

_PRIMITIVES: dict[Any, Schema] = {
    type(None): NONE,
    bool: BOOL,
    int: INT,
    float: FLOAT,
    str: STR,
    bytes: BYTES,
    Any: ANY,
}

_cache: dict[Any, Schema] = {}


def schema_of(tp: Any) -> Schema:
    """Derive the :class:`Schema` for a Python type annotation.

    Raises :class:`SchemaError` for types that cannot travel over the wire
    (e.g. callables, open file handles, arbitrary classes).
    """
    try:
        return _cache[tp]
    except (KeyError, TypeError):
        # TypeError: unhashable annotation (rare); derive without caching.
        pass
    schema = _derive(tp, seen=set())
    try:
        _cache[tp] = schema
    except TypeError:
        pass
    return schema


def _derive(tp: Any, seen: set) -> Schema:
    if tp in _PRIMITIVES:
        return _PRIMITIVES[tp]
    if tp is None:
        return NONE

    origin = get_origin(tp)
    args = get_args(tp)

    if origin in (Union, types.UnionType):
        non_none = [a for a in args if a is not type(None)]
        if len(non_none) != len(args) and len(non_none) == 1:
            return Schema(Kind.OPTIONAL, args=(_derive(non_none[0], seen),))
        raise SchemaError(
            f"unsupported union type {tp!r}: only Optional[T] unions are "
            "serializable (a wire format needs an unambiguous shape)"
        )
    if origin is list:
        _require_args(tp, args, 1)
        return Schema(Kind.LIST, args=(_derive(args[0], seen),))
    if origin is set or origin is frozenset:
        _require_args(tp, args, 1)
        return Schema(Kind.SET, args=(_derive(args[0], seen),))
    if origin is dict:
        _require_args(tp, args, 2)
        return Schema(Kind.DICT, args=(_derive(args[0], seen), _derive(args[1], seen)))
    if origin is tuple:
        if not args:
            raise SchemaError(f"bare tuple annotation {tp!r} needs element types")
        if len(args) == 2 and args[1] is Ellipsis:
            # tuple[T, ...] — variable length, encode like a list.
            return Schema(Kind.TUPLE, args=(_derive(args[0], seen), ANY))
        return Schema(Kind.TUPLE, args=tuple(_derive(a, seen) for a in args))

    if isinstance(tp, type):
        if issubclass(tp, enum.Enum):
            return Schema(Kind.ENUM, cls=tp)
        if dataclasses.is_dataclass(tp):
            return _struct_schema(tp, seen)

    if tp is typing.Any:
        return ANY

    raise SchemaError(
        f"type {tp!r} is not serializable: component method arguments and "
        "results must be primitives, containers, enums, or dataclasses"
    )


def _require_args(tp: Any, args: tuple, n: int) -> None:
    if len(args) != n:
        raise SchemaError(f"{tp!r} must be parameterized with {n} type argument(s)")


def _struct_schema(cls: type, seen: set) -> Schema:
    if cls in seen:
        raise SchemaError(
            f"recursive dataclass {cls.__name__!r} is not serializable: the "
            "wire format requires a statically bounded shape"
        )
    seen = seen | {cls}
    try:
        hints = get_type_hints(cls)
    except Exception as exc:  # unresolvable forward references
        raise SchemaError(f"cannot resolve type hints of {cls.__name__!r}: {exc}") from exc
    fields = []
    for f in dataclasses.fields(cls):
        if not f.init:
            continue
        if f.name not in hints:
            raise SchemaError(f"field {cls.__name__}.{f.name} has no type annotation")
        fields.append(Field(f.name, _derive(hints[f.name], seen)))
    return Schema(Kind.STRUCT, fields=tuple(fields), cls=cls)


def clear_cache() -> None:
    """Drop the schema cache (used by tests that redefine classes)."""
    _cache.clear()
