"""Runtime analogue of the paper's build-time code generation (Section 4.2).

* :mod:`repro.codegen.schema` — derive wire schemas from Python type hints.
* :mod:`repro.codegen.compiler` — compile component interfaces into method
  specs (argument/result schemas, stable method ids, routing keys).
* :mod:`repro.codegen.versioning` — fold all compiled contracts into the
  deployment version that gates every connection.
"""

from repro.codegen.compiler import InterfaceSpec, MethodSpec, compile_interface, routed
from repro.codegen.schema import Field, Kind, Schema, schema_of
from repro.codegen.versioning import PROTOCOL_VERSION, deployment_version

__all__ = [
    "InterfaceSpec",
    "MethodSpec",
    "compile_interface",
    "routed",
    "Field",
    "Kind",
    "Schema",
    "schema_of",
    "PROTOCOL_VERSION",
    "deployment_version",
]
