"""Shared primitives for the wire formats.

Three codecs live in this package:

* :mod:`repro.serde.compact` — the paper's custom format: fields in schema
  order, no tags, no type info (Section 6).  Valid only when both peers run
  the same deployment version.
* :mod:`repro.serde.tagged` — a protobuf-style tagged binary format: every
  field carries a varint key ``(field_number << 3) | wire_type`` so old and
  new readers can skip unknown fields.  This is the status-quo baseline.
* :mod:`repro.serde.jsoncodec` — JSON with field names, the other status-quo
  format the paper cites as inefficient.

All three share the varint and buffer machinery defined here so that the
benchmarked differences come from the format design, not implementation
quality.
"""

from __future__ import annotations

import struct
from typing import Any, Protocol

from repro.core.errors import DecodeError
from repro.codegen.schema import Schema

_FLOAT = struct.Struct("<d")


class Reader:
    """A positional reader over ``bytes``, ``bytearray``, or ``memoryview``.

    Bounds are checked on every read; a truncated buffer raises
    :class:`DecodeError` rather than ``IndexError`` so callers can treat all
    malformed input uniformly.

    Zero-copy contract: the hot decode path wraps each incoming frame in a
    single :class:`memoryview` and hands out *borrowed* windows via
    :meth:`view` and :meth:`rest` — no byte is copied until a decoder
    materializes it.  Borrowed views are valid only while the backing
    buffer lives; anything that outlives the decode call (``bytes`` fields,
    decoded strings) must be materialized, which is exactly what
    :meth:`take` and ``str(view, "utf-8")`` do.
    """

    __slots__ = ("buf", "pos")

    def __init__(self, buf: "bytes | bytearray | memoryview", pos: int = 0) -> None:
        self.buf = buf
        self.pos = pos

    def take(self, n: int) -> bytes:
        """Consume ``n`` bytes, materialized as owned ``bytes``."""
        out = self.view(n)
        return out if type(out) is bytes else bytes(out)

    def view(self, n: int) -> "bytes | memoryview":
        """Consume ``n`` bytes without copying when the buffer is a view."""
        end = self.pos + n
        if n < 0 or end > len(self.buf):
            raise DecodeError(
                f"truncated buffer: need {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        out = self.buf[self.pos : end]
        self.pos = end
        return out

    def rest(self) -> "bytes | memoryview":
        """Consume the unread remainder without copying when view-backed."""
        out = self.buf[self.pos :]
        self.pos = len(self.buf)
        return out

    def byte(self) -> int:
        if self.pos >= len(self.buf):
            raise DecodeError(f"truncated buffer: need 1 byte at offset {self.pos}")
        b = self.buf[self.pos]
        self.pos += 1
        return b

    def eof(self) -> bool:
        return self.pos >= len(self.buf)

    def remaining(self) -> int:
        return len(self.buf) - self.pos


def write_uvarint(out: bytearray, value: int) -> None:
    """Append an unsigned LEB128 varint."""
    if value < 0:
        raise ValueError(f"uvarint cannot encode negative value {value}")
    while value > 0x7F:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def read_uvarint(r: Reader) -> int:
    shift = 0
    result = 0
    while True:
        b = r.byte()
        result |= (b & 0x7F) << shift
        if not b & 0x80:
            return result
        shift += 7
        # Python ints are arbitrary precision; the bound exists only to cut
        # off unterminated varints from corrupt buffers, so it is generous.
        if shift > 9100:
            raise DecodeError("uvarint too long (corrupt buffer)")


def zigzag(value: int) -> int:
    """Map signed to unsigned so small magnitudes stay small on the wire.

    Works for arbitrary-precision Python ints: 0,-1,1,-2,2 -> 0,1,2,3,4.
    """
    return -2 * value - 1 if value < 0 else 2 * value


def unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


def write_svarint(out: bytearray, value: int) -> None:
    write_uvarint(out, zigzag(value))


def read_svarint(r: Reader) -> int:
    return unzigzag(read_uvarint(r))


def write_float(out: bytearray, value: float) -> None:
    out += _FLOAT.pack(value)


def read_float(r: Reader) -> float:
    return _FLOAT.unpack(r.take(8))[0]


class Codec(Protocol):
    """The interface all three wire formats implement."""

    name: str

    def encode(self, schema: Schema, value: Any) -> bytes:
        """Serialize ``value`` (which must conform to ``schema``)."""
        ...

    def encode_into(self, schema: Schema, value: Any, out: bytearray) -> None:
        """Append the serialization of ``value`` to a caller-supplied buffer.

        The zero-copy sibling of :meth:`encode`: the transport passes the
        very buffer it will enqueue on the wire, so no intermediate
        ``bytes()`` materialization happens on the hot path.
        """
        ...

    def decode(self, schema: Schema, data: "bytes | bytearray | memoryview") -> Any:
        """Deserialize a buffer produced by :meth:`encode` with ``schema``.

        Accepts any bytes-like object; decoding from a ``memoryview`` is
        zero-copy until leaf values are materialized.
        """
        ...


def encode_payload(codec: Codec, schema: Schema, value: Any) -> "bytes | bytearray":
    """Encode with ``encode_into`` when the codec supports it.

    Returns a buffer suitable for handing straight to the transport;
    falls back to :meth:`Codec.encode` for third-party codecs that only
    implement the minimal interface.
    """
    into = getattr(codec, "encode_into", None)
    if into is None:
        return codec.encode(schema, value)
    out = bytearray()
    into(schema, value, out)
    return out
