"""A protobuf-style tagged binary format — the status-quo baseline.

This is the format the paper argues the industry is forced into by
independently released binaries: every struct field carries a varint key
``(field_number << 3) | wire_type`` so a reader built from an older or newer
schema can skip fields it does not know.  That robustness costs bytes (one
key per field, length prefixes for nesting) and CPU (key parsing, wire-type
dispatch, skip logic) — exactly the overhead the compact format avoids.

Wire types (a faithful subset of the protobuf encoding):

* ``0`` VARINT — bool, int (zigzag), enum
* ``1`` FIXED64 — float
* ``2`` LEN — str, bytes, nested struct, packed list/set/tuple, dict entry

Proto3-like semantics are preserved: encoders omit nothing (we always write
present fields, including defaults, to keep decoding deterministic), and
decoders tolerate unknown field numbers and fill absent fields with zero
values.  Field numbers are assigned from declaration order (1-based), which
is how version-skew bugs creep into real systems — reordering fields changes
meaning silently.  The rollout experiments (E10) exploit exactly this.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.codegen.schema import Kind, Schema
from repro.core.errors import DecodeError, EncodeError
from repro.serde.base import (
    Reader,
    read_float,
    read_uvarint,
    unzigzag,
    write_float,
    write_uvarint,
    zigzag,
)

VARINT = 0
FIXED64 = 1
LEN = 2

Encoder = Callable[[bytearray, Any], None]
Decoder = Callable[[Reader], Any]


class TaggedCodec:
    """Protobuf-wire-format-style codec with per-field tags."""

    name = "tagged"

    def __init__(self) -> None:
        self._struct_encoders: dict[Schema, Encoder] = {}
        self._struct_decoders: dict[Schema, Decoder] = {}

    # -- public API ---------------------------------------------------------

    def encode(self, schema: Schema, value: Any) -> bytes:
        out = bytearray()
        self.encode_into(schema, value, out)
        return bytes(out)

    def encode_into(self, schema: Schema, value: Any, out: bytearray) -> None:
        """Append the encoding to ``out`` — no intermediate materialization."""
        try:
            if schema.kind is Kind.STRUCT:
                self._struct_encoder(schema)(out, value)
            else:
                # Non-struct top level: wrap as a synthetic single-field
                # message, as gRPC method signatures do.
                self._encode_field(out, 1, schema, value)
        except (TypeError, AttributeError, ValueError, KeyError) as exc:
            raise EncodeError(
                f"value {value!r} does not conform to schema {schema.canonical()}: {exc}"
            ) from exc

    def decode(self, schema: Schema, data: "bytes | bytearray | memoryview") -> Any:
        r = Reader(data if isinstance(data, memoryview) else memoryview(data))
        if schema.kind is Kind.STRUCT:
            return self._struct_decoder(schema)(r)
        fields = {1: schema}
        values = self._decode_message(r, fields)
        if 1 in values:
            return values[1]
        return _zero_value(schema)

    # -- encoding -----------------------------------------------------------

    def _struct_encoder(self, schema: Schema) -> Encoder:
        try:
            return self._struct_encoders[schema]
        except KeyError:
            pass
        plan = [(i + 1, f.name, f.schema) for i, f in enumerate(schema.fields)]

        def enc(out: bytearray, value: Any) -> None:
            for number, name, fschema in plan:
                self._encode_field(out, number, fschema, getattr(value, name))

        self._struct_encoders[schema] = enc
        return enc

    def _encode_field(self, out: bytearray, number: int, schema: Schema, value: Any) -> None:
        kind = schema.kind
        if kind is Kind.OPTIONAL:
            if value is None:
                return  # absence encodes None, like proto3 optional
            self._encode_field(out, number, schema.args[0], value)
            return
        if kind is Kind.NONE:
            return
        if kind is Kind.BOOL:
            _key(out, number, VARINT)
            write_uvarint(out, 1 if value else 0)
        elif kind is Kind.INT:
            if isinstance(value, bool) or not isinstance(value, int):
                raise EncodeError(f"expected int, got {type(value).__name__}")
            _key(out, number, VARINT)
            write_uvarint(out, zigzag(value))
        elif kind is Kind.ENUM:
            index = list(schema.cls).index(value)
            _key(out, number, VARINT)
            write_uvarint(out, index)
        elif kind is Kind.FLOAT:
            _key(out, number, FIXED64)
            write_float(out, float(value))
        elif kind is Kind.STR:
            data = value.encode("utf-8")
            _key(out, number, LEN)
            write_uvarint(out, len(data))
            out += data
        elif kind is Kind.BYTES:
            _key(out, number, LEN)
            write_uvarint(out, len(value))
            out += value
        elif kind in (Kind.LIST, Kind.SET):
            # Repeated field: one tagged entry per element (unpacked
            # repeated encoding, the general proto2/proto3 form).  An empty
            # container is simply absent from the wire; decoders restore it
            # as the zero value, as proto3 does.  Nested containers must be
            # wrapped in a synthetic single-field message, because repeated
            # repeated fields do not exist in the tag encoding.
            elem = schema.args[0]
            if elem.kind in (Kind.LIST, Kind.SET, Kind.DICT):
                for item in value:
                    body = bytearray()
                    self._encode_field(body, 1, elem, item)
                    _key(out, number, LEN)
                    write_uvarint(out, len(body))
                    out += body
            else:
                for item in value:
                    self._encode_field(out, number, elem, item)
        elif kind is Kind.TUPLE:
            body = bytearray()
            if len(schema.args) == 2 and schema.args[1].kind is Kind.ANY:
                # Variable-length tuple: encode as a list at field 1, which
                # is exactly how the decoder reads it back.
                as_list = Schema(Kind.LIST, args=(schema.args[0],))
                self._encode_field(body, 1, as_list, list(value))
            else:
                if len(value) != len(schema.args):
                    raise EncodeError(
                        f"tuple length {len(value)} != schema arity {len(schema.args)}"
                    )
                for i, (aschema, item) in enumerate(zip(schema.args, value)):
                    self._encode_field(body, i + 1, aschema, item)
            _key(out, number, LEN)
            write_uvarint(out, len(body))
            out += body
        elif kind is Kind.DICT:
            # Proto map encoding: repeated entries, each a nested message
            # with key=field 1, value=field 2.
            kschema, vschema = schema.args
            for k, v in value.items():
                entry = bytearray()
                self._encode_field(entry, 1, kschema, k)
                self._encode_field(entry, 2, vschema, v)
                _key(out, number, LEN)
                write_uvarint(out, len(entry))
                out += entry
        elif kind is Kind.STRUCT:
            body = bytearray()
            self._struct_encoder(schema)(body, value)
            _key(out, number, LEN)
            write_uvarint(out, len(body))
            out += body
        else:
            raise EncodeError(f"cannot encode schema kind {kind}")

    # -- decoding -----------------------------------------------------------

    def _struct_decoder(self, schema: Schema) -> Decoder:
        try:
            return self._struct_decoders[schema]
        except KeyError:
            pass
        field_schemas = {i + 1: f.schema for i, f in enumerate(schema.fields)}
        names = [f.name for f in schema.fields]
        cls = schema.cls

        def dec(r: Reader) -> Any:
            values = self._decode_message(r, field_schemas)
            args = []
            for i, (name, f) in enumerate(zip(names, schema.fields)):
                number = i + 1
                if number in values:
                    args.append(values[number])
                else:
                    args.append(_zero_value(f.schema))
            return cls(*args)

        self._struct_decoders[schema] = dec
        return dec

    def _decode_message(self, r: Reader, field_schemas: dict[int, Schema]) -> dict[int, Any]:
        """Decode tagged fields until EOF, skipping unknown field numbers."""
        values: dict[int, Any] = {}
        while not r.eof():
            key = read_uvarint(r)
            number = key >> 3
            wtype = key & 0x7
            schema = field_schemas.get(number)
            if schema is None:
                _skip(r, wtype)
                continue
            self._decode_field(r, wtype, schema, number, values)
        return values

    def _decode_field(
        self,
        r: Reader,
        wtype: int,
        schema: Schema,
        number: int,
        values: dict[int, Any],
    ) -> None:
        kind = schema.kind
        if kind is Kind.OPTIONAL:
            self._decode_field(r, wtype, schema.args[0], number, values)
            return
        if kind in (Kind.LIST, Kind.SET):
            elem = schema.args[0]
            bucket = values.setdefault(number, [] if kind is Kind.LIST else set())
            if elem.kind in (Kind.LIST, Kind.SET, Kind.DICT):
                # Wrapped nested container: one LEN entry per element.
                _expect(wtype, LEN, number)
                n = read_uvarint(r)
                body = Reader(r.view(n))
                inner = self._decode_message(body, {1: elem})
                _add(bucket, inner.get(1, _zero_value(elem)))
            else:
                item_values: dict[int, Any] = {}
                self._decode_field(r, wtype, elem, number, item_values)
                if number in item_values:
                    _add(bucket, item_values[number])
            return
        if kind is Kind.DICT:
            if wtype != LEN:
                raise DecodeError(f"map field {number} must be length-delimited")
            n = read_uvarint(r)
            body = Reader(r.view(n))
            bucket = values.setdefault(number, {})
            kschema, vschema = schema.args
            entry = self._decode_message(body, {1: kschema, 2: vschema})
            key = entry.get(1, _zero_value(kschema))
            val = entry.get(2, _zero_value(vschema))
            bucket[key] = val
            return

        values[number] = self._decode_scalar(r, wtype, schema, number)

    def _decode_scalar(self, r: Reader, wtype: int, schema: Schema, number: int) -> Any:
        kind = schema.kind
        if kind is Kind.BOOL:
            _expect(wtype, VARINT, number)
            v = read_uvarint(r)
            if v > 1:
                raise DecodeError(f"invalid bool varint {v}")
            return bool(v)
        if kind is Kind.INT:
            _expect(wtype, VARINT, number)
            return unzigzag(read_uvarint(r))
        if kind is Kind.ENUM:
            _expect(wtype, VARINT, number)
            i = read_uvarint(r)
            members = list(schema.cls)
            if i >= len(members):
                # Unknown enum value from a newer schema: degrade to the
                # first member (proto3 keeps the raw int; we must produce a
                # valid member).
                return members[0]
            return members[i]
        if kind is Kind.FLOAT:
            _expect(wtype, FIXED64, number)
            return read_float(r)
        if kind is Kind.STR:
            _expect(wtype, LEN, number)
            n = read_uvarint(r)
            try:
                return str(r.view(n), "utf-8")
            except UnicodeDecodeError as exc:
                raise DecodeError(f"invalid utf-8: {exc}") from exc
        if kind is Kind.BYTES:
            _expect(wtype, LEN, number)
            return r.take(read_uvarint(r))
        if kind is Kind.STRUCT:
            _expect(wtype, LEN, number)
            n = read_uvarint(r)
            return self._struct_decoder(schema)(Reader(r.view(n)))
        if kind is Kind.TUPLE:
            _expect(wtype, LEN, number)
            n = read_uvarint(r)
            body = Reader(r.view(n))
            if len(schema.args) == 2 and schema.args[1].kind is Kind.ANY:
                items = self._decode_message(body, {1: Schema(Kind.LIST, args=(schema.args[0],))})
                return tuple(items.get(1, []))
            fields = {i + 1: a for i, a in enumerate(schema.args)}
            vals = self._decode_message(body, fields)
            return tuple(
                vals.get(i + 1, _zero_value(a)) for i, a in enumerate(schema.args)
            )
        if kind is Kind.NONE:
            return None
        raise DecodeError(f"cannot decode schema kind {kind}")


def _key(out: bytearray, number: int, wtype: int) -> None:
    write_uvarint(out, (number << 3) | wtype)


def _expect(wtype: int, want: int, number: int) -> None:
    if wtype != want:
        raise DecodeError(f"field {number}: wire type {wtype}, expected {want}")


def _is_len_delimited(schema: Schema) -> bool:
    if schema.kind is Kind.OPTIONAL:
        return _is_len_delimited(schema.args[0])
    return schema.kind in (
        Kind.STR,
        Kind.BYTES,
        Kind.STRUCT,
        Kind.TUPLE,
        Kind.DICT,
        Kind.LIST,
        Kind.SET,
    )


def _add(bucket: Any, item: Any) -> None:
    if isinstance(bucket, set):
        bucket.add(item)
    else:
        bucket.append(item)


def _skip(r: Reader, wtype: int) -> None:
    """Skip a field of unknown number — the versioned format's key feature."""
    if wtype == VARINT:
        read_uvarint(r)
    elif wtype == FIXED64:
        r.view(8)
    elif wtype == LEN:
        r.view(read_uvarint(r))
    else:
        raise DecodeError(f"cannot skip unknown wire type {wtype}")


def _zero_value(schema: Schema) -> Any:
    """Proto3-style default for an absent field."""
    kind = schema.kind
    if kind is Kind.OPTIONAL or kind is Kind.NONE:
        return None
    if kind is Kind.BOOL:
        return False
    if kind is Kind.INT:
        return 0
    if kind is Kind.FLOAT:
        return 0.0
    if kind is Kind.STR:
        return ""
    if kind is Kind.BYTES:
        return b""
    if kind is Kind.LIST:
        return []
    if kind is Kind.SET:
        return set()
    if kind is Kind.DICT:
        return {}
    if kind is Kind.TUPLE:
        if len(schema.args) == 2 and schema.args[1].kind is Kind.ANY:
            return ()
        return tuple(_zero_value(a) for a in schema.args)
    if kind is Kind.ENUM:
        return next(iter(schema.cls))
    if kind is Kind.STRUCT:
        return schema.cls(*[_zero_value(f.schema) for f in schema.fields])
    raise DecodeError(f"no zero value for schema kind {kind}")


#: Shared default instance.
CODEC = TaggedCodec()
