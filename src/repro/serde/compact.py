"""The compact, non-versioned wire format (Section 6 of the paper).

    "The serialization format used does not require any encoding of field
    numbers or type information.  This is because all encoders and decoders
    run at the exact same version and agree on the set of fields and the
    order in which they should be encoded and decoded in advance."

The format is schema-directed: a struct is just the concatenation of its
fields in declaration order; a list is a count followed by elements; an
optional is one presence byte.  There are no tags, no field names, and no
type markers anywhere.  Safety comes from the transport handshake
(:mod:`repro.transport.connection`), which refuses to connect peers whose
deployment versions differ.

Encoders and decoders are *compiled* per schema into chains of closures —
the runtime analogue of the Go prototype's generated marshaling code
(Section 4.2) — and memoized, so the per-call overhead is one dict lookup.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.codegen.schema import Kind, Schema
from repro.core.errors import DecodeError, EncodeError
from repro.serde.base import (
    Reader,
    read_float,
    read_svarint,
    read_uvarint,
    write_float,
    write_svarint,
    write_uvarint,
)

Encoder = Callable[[bytearray, Any], None]
Decoder = Callable[[Reader], Any]


class CompactCodec:
    """Schema-directed tag-free binary codec."""

    name = "compact"

    def __init__(self) -> None:
        self._encoders: dict[Schema, Encoder] = {}
        self._decoders: dict[Schema, Decoder] = {}

    # -- public API ---------------------------------------------------------

    def encode(self, schema: Schema, value: Any) -> bytes:
        out = bytearray()
        self.encode_into(schema, value, out)
        return bytes(out)

    def encode_into(self, schema: Schema, value: Any, out: bytearray) -> None:
        """Append the encoding to ``out`` — no intermediate materialization."""
        try:
            self.encoder(schema)(out, value)
        except (TypeError, AttributeError, ValueError, KeyError) as exc:
            raise EncodeError(
                f"value {value!r} does not conform to schema {schema.canonical()}: {exc}"
            ) from exc

    def decode(self, schema: Schema, data: "bytes | bytearray | memoryview") -> Any:
        r = Reader(data if isinstance(data, memoryview) else memoryview(data))
        value = self.decoder(schema)(r)
        if not r.eof():
            raise DecodeError(
                f"{r.remaining()} trailing bytes after decoding {schema.canonical()}"
            )
        return value

    # -- compilation --------------------------------------------------------

    def encoder(self, schema: Schema) -> Encoder:
        try:
            return self._encoders[schema]
        except KeyError:
            enc = self._compile_encoder(schema)
            self._encoders[schema] = enc
            return enc

    def decoder(self, schema: Schema) -> Decoder:
        try:
            return self._decoders[schema]
        except KeyError:
            dec = self._compile_decoder(schema)
            self._decoders[schema] = dec
            return dec

    def _compile_encoder(self, schema: Schema) -> Encoder:
        kind = schema.kind
        if kind is Kind.NONE:
            return _enc_none
        if kind is Kind.BOOL:
            return _enc_bool
        if kind is Kind.INT:
            return _enc_int
        if kind is Kind.FLOAT:
            return _enc_float
        if kind is Kind.STR:
            return _enc_str
        if kind is Kind.BYTES:
            return _enc_bytes
        if kind is Kind.LIST or kind is Kind.SET:
            elem = self.encoder(schema.args[0])

            def enc_seq(out: bytearray, value: Any) -> None:
                write_uvarint(out, len(value))
                for item in value:
                    elem(out, item)

            return enc_seq
        if kind is Kind.TUPLE:
            if len(schema.args) == 2 and schema.args[1].kind is Kind.ANY:
                elem = self.encoder(schema.args[0])

                def enc_vartuple(out: bytearray, value: Any) -> None:
                    write_uvarint(out, len(value))
                    for item in value:
                        elem(out, item)

                return enc_vartuple
            elems = tuple(self.encoder(a) for a in schema.args)

            def enc_tuple(out: bytearray, value: Any) -> None:
                if len(value) != len(elems):
                    raise EncodeError(
                        f"tuple length {len(value)} != schema arity {len(elems)}"
                    )
                for enc, item in zip(elems, value):
                    enc(out, item)

            return enc_tuple
        if kind is Kind.DICT:
            kenc = self.encoder(schema.args[0])
            venc = self.encoder(schema.args[1])

            def enc_dict(out: bytearray, value: Any) -> None:
                write_uvarint(out, len(value))
                for k, v in value.items():
                    kenc(out, k)
                    venc(out, v)

            return enc_dict
        if kind is Kind.OPTIONAL:
            inner = self.encoder(schema.args[0])

            def enc_opt(out: bytearray, value: Any) -> None:
                if value is None:
                    out.append(0)
                else:
                    out.append(1)
                    inner(out, value)

            return enc_opt
        if kind is Kind.STRUCT:
            names = tuple(f.name for f in schema.fields)
            encs = tuple(self.encoder(f.schema) for f in schema.fields)

            def enc_struct(out: bytearray, value: Any) -> None:
                for name, enc in zip(names, encs):
                    enc(out, getattr(value, name))

            return enc_struct
        if kind is Kind.ENUM:
            index = {member: i for i, member in enumerate(schema.cls)}

            def enc_enum(out: bytearray, value: Any) -> None:
                write_uvarint(out, index[value])

            return enc_enum
        raise EncodeError(f"cannot encode schema kind {kind}")

    def _compile_decoder(self, schema: Schema) -> Decoder:
        kind = schema.kind
        if kind is Kind.NONE:
            return _dec_none
        if kind is Kind.BOOL:
            return _dec_bool
        if kind is Kind.INT:
            return read_svarint
        if kind is Kind.FLOAT:
            return read_float
        if kind is Kind.STR:
            return _dec_str
        if kind is Kind.BYTES:
            return _dec_bytes
        if kind is Kind.LIST:
            elem = self.decoder(schema.args[0])

            def dec_list(r: Reader) -> list:
                return [elem(r) for _ in range(_checked_count(r))]

            return dec_list
        if kind is Kind.SET:
            elem = self.decoder(schema.args[0])

            def dec_set(r: Reader) -> set:
                return {elem(r) for _ in range(_checked_count(r))}

            return dec_set
        if kind is Kind.TUPLE:
            if len(schema.args) == 2 and schema.args[1].kind is Kind.ANY:
                elem = self.decoder(schema.args[0])

                def dec_vartuple(r: Reader) -> tuple:
                    return tuple(elem(r) for _ in range(_checked_count(r)))

                return dec_vartuple
            elems = tuple(self.decoder(a) for a in schema.args)

            def dec_tuple(r: Reader) -> tuple:
                return tuple(dec(r) for dec in elems)

            return dec_tuple
        if kind is Kind.DICT:
            kdec = self.decoder(schema.args[0])
            vdec = self.decoder(schema.args[1])

            def dec_dict(r: Reader) -> dict:
                return {kdec(r): vdec(r) for _ in range(_checked_count(r))}

            return dec_dict
        if kind is Kind.OPTIONAL:
            inner = self.decoder(schema.args[0])

            def dec_opt(r: Reader) -> Any:
                flag = r.byte()
                if flag == 0:
                    return None
                if flag == 1:
                    return inner(r)
                raise DecodeError(f"invalid optional presence byte {flag}")

            return dec_opt
        if kind is Kind.STRUCT:
            cls = schema.cls
            decs = tuple(self.decoder(f.schema) for f in schema.fields)

            def dec_struct(r: Reader) -> Any:
                return cls(*[dec(r) for dec in decs])

            return dec_struct
        if kind is Kind.ENUM:
            members = tuple(schema.cls)

            def dec_enum(r: Reader) -> Any:
                i = read_uvarint(r)
                if i >= len(members):
                    raise DecodeError(
                        f"enum index {i} out of range for {schema.cls.__name__}"
                    )
                return members[i]

            return dec_enum
        raise DecodeError(f"cannot decode schema kind {kind}")


def _checked_count(r: Reader) -> int:
    """Read a container length and reject lengths the buffer cannot hold.

    Each element takes at least one byte, so a count larger than the
    remaining buffer is certainly corrupt; rejecting it early prevents
    pathological allocations from malformed input.
    """
    n = read_uvarint(r)
    if n > r.remaining():
        raise DecodeError(f"container count {n} exceeds remaining {r.remaining()} bytes")
    return n


# -- primitive leaf functions (module level: shared across codec instances) --


def _enc_none(out: bytearray, value: Any) -> None:
    if value is not None:
        raise EncodeError(f"expected None, got {value!r}")


def _dec_none(r: Reader) -> None:
    return None


def _enc_bool(out: bytearray, value: Any) -> None:
    out.append(1 if value else 0)


def _dec_bool(r: Reader) -> bool:
    b = r.byte()
    if b > 1:
        raise DecodeError(f"invalid bool byte {b}")
    return bool(b)


def _enc_int(out: bytearray, value: Any) -> None:
    if isinstance(value, bool) or not isinstance(value, int):
        raise EncodeError(f"expected int, got {type(value).__name__}")
    write_svarint(out, value)


def _enc_float(out: bytearray, value: Any) -> None:
    write_float(out, float(value))


def _enc_str(out: bytearray, value: Any) -> None:
    data = value.encode("utf-8")
    write_uvarint(out, len(data))
    out += data


def _dec_str(r: Reader) -> str:
    n = read_uvarint(r)
    try:
        # str() decodes straight out of the borrowed view — no bytes copy.
        return str(r.view(n), "utf-8")
    except UnicodeDecodeError as exc:
        raise DecodeError(f"invalid utf-8 in string: {exc}") from exc


def _enc_bytes(out: bytearray, value: Any) -> None:
    write_uvarint(out, len(value))
    out += value


def _dec_bytes(r: Reader) -> bytes:
    return r.take(read_uvarint(r))


#: Shared default instance; compilation caches are per instance, so sharing
#: one across the process maximizes reuse.
CODEC = CompactCodec()
