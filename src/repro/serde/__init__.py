"""Wire formats: the paper's compact format plus two status-quo baselines.

See :mod:`repro.serde.base` for the shared machinery and the package
docstrings of each codec for format details.  :func:`codec_by_name` is the
lookup used by deployers and benchmarks to select a data-plane format.
"""

from repro.serde.base import Codec, Reader
from repro.serde.compact import CompactCodec
from repro.serde.compact import CODEC as COMPACT
from repro.serde.jsoncodec import JSONCodec
from repro.serde.jsoncodec import CODEC as JSON
from repro.serde.tagged import TaggedCodec
from repro.serde.tagged import CODEC as TAGGED

_BY_NAME: dict[str, Codec] = {
    "compact": COMPACT,
    "tagged": TAGGED,
    "json": JSON,
}


def codec_by_name(name: str) -> Codec:
    """Return the shared codec instance registered under ``name``.

    Valid names are ``compact`` (the paper's format), ``tagged``
    (protobuf-style baseline), and ``json``.
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(
            f"unknown codec {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None


__all__ = [
    "Codec",
    "Reader",
    "CompactCodec",
    "TaggedCodec",
    "JSONCodec",
    "COMPACT",
    "TAGGED",
    "JSON",
    "codec_by_name",
]
