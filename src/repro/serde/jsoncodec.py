"""JSON wire format — the other status-quo baseline the paper cites.

JSON carries full field names and textual values on every message, which is
the most self-describing and the least efficient of the three formats.  It
is schema-checked on encode (so application bugs surface at the sender) and
schema-coerced on decode (so dataclasses, enums, tuples, sets, and bytes
survive the round trip even though JSON has no native representation for
them: bytes travel base64-encoded, dict keys are stringified).
"""

from __future__ import annotations

import base64
import json
import math
from typing import Any

from repro.codegen.schema import Kind, Schema
from repro.core.errors import DecodeError, EncodeError


class JSONCodec:
    """Field-name-carrying textual codec."""

    name = "json"

    def encode(self, schema: Schema, value: Any) -> bytes:
        try:
            jsonable = _to_jsonable(schema, value)
        except (TypeError, AttributeError, ValueError, KeyError) as exc:
            raise EncodeError(
                f"value {value!r} does not conform to schema {schema.canonical()}: {exc}"
            ) from exc
        return json.dumps(jsonable, separators=(",", ":"), allow_nan=True).encode("utf-8")

    def encode_into(self, schema: Schema, value: Any, out: bytearray) -> None:
        # JSON must serialize through a str anyway, so the buffer protocol
        # saves nothing here; provided for interface parity.
        out += self.encode(schema, value)

    def decode(self, schema: Schema, data: "bytes | bytearray | memoryview") -> Any:
        try:
            jsonable = json.loads(str(data, "utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise DecodeError(f"invalid JSON: {exc}") from exc
        return _from_jsonable(schema, jsonable)


def _to_jsonable(schema: Schema, value: Any) -> Any:
    kind = schema.kind
    if kind is Kind.NONE:
        if value is not None:
            raise EncodeError(f"expected None, got {value!r}")
        return None
    if kind is Kind.BOOL:
        return bool(value)
    if kind is Kind.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise EncodeError(f"expected int, got {type(value).__name__}")
        return value
    if kind is Kind.FLOAT:
        return float(value)
    if kind is Kind.STR:
        if not isinstance(value, str):
            raise EncodeError(f"expected str, got {type(value).__name__}")
        return value
    if kind is Kind.BYTES:
        return base64.b64encode(bytes(value)).decode("ascii")
    if kind in (Kind.LIST, Kind.SET, Kind.TUPLE):
        if kind is Kind.TUPLE and not (
            len(schema.args) == 2 and schema.args[1].kind is Kind.ANY
        ):
            if len(value) != len(schema.args):
                raise EncodeError(
                    f"tuple length {len(value)} != schema arity {len(schema.args)}"
                )
            return [_to_jsonable(a, v) for a, v in zip(schema.args, value)]
        elem = schema.args[0]
        return [_to_jsonable(elem, v) for v in value]
    if kind is Kind.DICT:
        kschema, vschema = schema.args
        out = {}
        for k, v in value.items():
            # JSON object keys must be strings; non-string keys are encoded
            # as their JSON representation.
            jk = _to_jsonable(kschema, k)
            key = jk if isinstance(jk, str) else json.dumps(jk, separators=(",", ":"))
            out[key] = _to_jsonable(vschema, v)
        return out
    if kind is Kind.OPTIONAL:
        if value is None:
            return None
        return _to_jsonable(schema.args[0], value)
    if kind is Kind.STRUCT:
        return {
            f.name: _to_jsonable(f.schema, getattr(value, f.name)) for f in schema.fields
        }
    if kind is Kind.ENUM:
        return value.name
    raise EncodeError(f"cannot encode schema kind {kind}")


def _from_jsonable(schema: Schema, value: Any) -> Any:
    kind = schema.kind
    if kind is Kind.NONE:
        return None
    if kind is Kind.BOOL:
        _expect_type(value, bool, schema)
        return value
    if kind is Kind.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise DecodeError(f"expected int, got {value!r}")
        return value
    if kind is Kind.FLOAT:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise DecodeError(f"expected float, got {value!r}")
        return float(value)
    if kind is Kind.STR:
        _expect_type(value, str, schema)
        return value
    if kind is Kind.BYTES:
        _expect_type(value, str, schema)
        try:
            return base64.b64decode(value.encode("ascii"), validate=True)
        except (ValueError, UnicodeEncodeError) as exc:
            raise DecodeError(f"invalid base64: {exc}") from exc
    if kind in (Kind.LIST, Kind.SET, Kind.TUPLE):
        _expect_type(value, list, schema)
        if kind is Kind.TUPLE and not (
            len(schema.args) == 2 and schema.args[1].kind is Kind.ANY
        ):
            if len(value) != len(schema.args):
                raise DecodeError(
                    f"tuple length {len(value)} != schema arity {len(schema.args)}"
                )
            return tuple(_from_jsonable(a, v) for a, v in zip(schema.args, value))
        elem = schema.args[0]
        items = (_from_jsonable(elem, v) for v in value)
        if kind is Kind.LIST:
            return list(items)
        if kind is Kind.SET:
            return set(items)
        return tuple(items)
    if kind is Kind.DICT:
        _expect_type(value, dict, schema)
        kschema, vschema = schema.args
        out = {}
        for k, v in value.items():
            if kschema.kind is Kind.STR:
                key: Any = k
            else:
                try:
                    key = _from_jsonable(kschema, json.loads(k))
                except ValueError as exc:
                    raise DecodeError(f"invalid dict key {k!r}: {exc}") from exc
            out[key] = _from_jsonable(vschema, v)
        return out
    if kind is Kind.OPTIONAL:
        if value is None:
            return None
        return _from_jsonable(schema.args[0], value)
    if kind is Kind.STRUCT:
        _expect_type(value, dict, schema)
        args = []
        for f in schema.fields:
            if f.name not in value:
                raise DecodeError(
                    f"missing field {f.name!r} for {schema.cls.__name__}"
                )
            args.append(_from_jsonable(f.schema, value[f.name]))
        return schema.cls(*args)
    if kind is Kind.ENUM:
        _expect_type(value, str, schema)
        try:
            return schema.cls[value]
        except KeyError as exc:
            raise DecodeError(
                f"unknown member {value!r} of enum {schema.cls.__name__}"
            ) from exc
    raise DecodeError(f"cannot decode schema kind {kind}")


def _expect_type(value: Any, tp: type, schema: Schema) -> None:
    if not isinstance(value, tp) or (tp is not bool and isinstance(value, bool)):
        raise DecodeError(
            f"expected {tp.__name__} for {schema.canonical()}, got {value!r}"
        )


#: Shared default instance.
CODEC = JSONCodec()
