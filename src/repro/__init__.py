"""repro — a Python reproduction of "Towards Modern Development of Cloud
Applications" (HotOS '23), i.e. a Service Weaver-style component runtime.

Write your distributed application as a logical monolith of components;
let the runtime decide placement, replication, scaling, routing, and
rollout::

    import repro

    class Hello(repro.Component):
        async def greet(self, name: str) -> str: ...

    @repro.implements(Hello)
    class HelloImpl:
        async def greet(self, name: str) -> str:
            return f"Hello, {name}!"

    async def main(app):
        hello = app.get(Hello)
        print(await hello.greet("World"))

    repro.run(main)

Packages:

* :mod:`repro.core` — programming model (components, stubs, config).
* :mod:`repro.codegen` — schema derivation and deployment versioning.
* :mod:`repro.serde` — compact / tagged / JSON wire formats.
* :mod:`repro.transport` — RPC over TCP/UNIX sockets + HTTP baseline.
* :mod:`repro.runtime` — proclets, envelopes, manager, deployers,
  autoscaling, routing, atomic rollouts.
* :mod:`repro.sim` — discrete-event cluster simulation (the GKE stand-in).
* :mod:`repro.boutique` — the 11-component Online Boutique evaluation app.
* :mod:`repro.baseline` — the status-quo microservice framework + app.
* :mod:`repro.testing` — fault injection and chaos testing harness.
"""

from repro.core import (
    AppConfig,
    Application,
    AutoscaleConfig,
    CallGraph,
    CallOptions,
    Component,
    ComponentContext,
    ComponentNotFound,
    ConfigError,
    ErrorCode,
    RegistrationError,
    ResourceExhausted,
    RolloutConfig,
    WeaverError,
    component_name,
    global_registry,
    idempotent,
    implements,
    init,
    routed,
    run,
)

__version__ = "0.1.0"

__all__ = [
    "AppConfig",
    "Application",
    "AutoscaleConfig",
    "CallGraph",
    "CallOptions",
    "Component",
    "ComponentContext",
    "ComponentNotFound",
    "ConfigError",
    "ErrorCode",
    "RegistrationError",
    "ResourceExhausted",
    "RolloutConfig",
    "WeaverError",
    "component_name",
    "global_registry",
    "idempotent",
    "implements",
    "init",
    "routed",
    "run",
    "__version__",
]
